"""Scatter-gather coordination over process-isolated shard workers.

Two layers live here:

- :class:`ShardedStore` -- the topology half.  It owns the directory
  tree (``<root>/node-<n>/shard-<s>/``), the consistent-hash ring that
  places shards on nodes (R-way replica chains), and one
  :class:`~repro.engine.transport.WorkerHandle` per node.  Storage
  operations (append / truncate / compact) address *all live replicas*
  of a shard, in the same order with the same batches, so replica
  stores stay bit-identical and failover needs no reconciliation.
- :class:`ShardCoordinator` -- the query half.  It routes a
  :class:`~repro.core.server.ServerQuery` to the shards that could hold
  matching rows (DET point/IN predicates on the shard key resolve to
  owners through the ring; per-shard zone-map rollups prune ORE ranges
  and everything else), scatters the survivors across worker processes,
  retries a shard's stage on the next replica when its worker dies
  mid-call, and merges the encrypted partial aggregates exactly once --
  so results are bit-identical to single-store execution.

``JobMetrics.shards_total`` / ``shards_skipped`` / ``failovers`` record
the routing and the recoveries; per-stage metrics from the workers are
folded together (task times concatenated, makespans combined as a max,
since shard nodes run in parallel).

Leakage: routing consults only DET tokens and the zone-map rollups --
both already part of the DET/ORE leakage baseline the single-store
pruning index exposes.  Which shards a query touches is exactly the
partition-access pattern the paper's server already sees.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Sequence

import numpy as np

from repro.core import server as srv
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.metrics import JobMetrics, StageMetrics
from repro.engine.transport import WorkerDied, WorkerHandle
from repro.errors import ExecutionError
from repro.index import prune
from repro.obs import trace as obs_trace
from repro.shard.ring import HashRing
from repro.shard.worker import shard_worker_main

#: Row-ID stride between shards: shard ``s``'s IDs start at ``s << 44``.
#: Each shard's store keeps the contiguous-ID invariant (ASHE pads
#: telescope, ID lists range-compress) while shard ID spaces stay
#: disjoint, so gathered scan rows and ID lists never collide.
SHARD_ID_STRIDE = 1 << 44


@dataclass(frozen=True)
class ShardTopology:
    """The durable description of one sharded table's layout.

    ``shard_key`` is the logical column whose DET tokens place rows;
    ``key_column`` is its physical ciphertext column (what filters and
    stored rows actually carry).  Shards and nodes are both numbered
    ``0..num_shards-1``: shard ``s``'s primary is node ``s`` under the
    identity placement of :meth:`HashRing.replica_chain`.
    """

    table: str
    shard_key: str
    key_column: str
    num_shards: int
    replicas: int = 1
    vnodes: int = 64

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ExecutionError(
                f"a sharded table needs at least one shard, got {self.num_shards}"
            )
        if not 1 <= self.replicas <= self.num_shards:
            raise ExecutionError(
                f"replicas must be in [1, {self.num_shards}], got {self.replicas}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "shard_key": self.shard_key,
            "key_column": self.key_column,
            "num_shards": self.num_shards,
            "replicas": self.replicas,
            "vnodes": self.vnodes,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ShardTopology":
        return ShardTopology(
            table=str(data["table"]),
            shard_key=str(data["shard_key"]),
            key_column=str(data["key_column"]),
            num_shards=int(data["num_shards"]),
            replicas=int(data["replicas"]),
            vnodes=int(data["vnodes"]),
        )


class ShardedStore:
    """Worker processes plus the ring that places shards on them."""

    def __init__(
        self,
        root: str,
        topology: ShardTopology,
        config: ClusterConfig | None = None,
    ):
        self.root = os.path.abspath(root)
        self.topology = topology
        self.config = config or ClusterConfig()
        self.ring = HashRing(
            list(range(topology.num_shards)),
            vnodes=topology.vnodes,
            replicas=topology.replicas,
        )
        self.dead: set[int] = set()
        self._lock = threading.Lock()
        self._rollups: dict[int, tuple[int, dict | None]] = {}
        self.workers: dict[int, WorkerHandle] = {}
        worker_config = replace(self.config, storage_dir=None)
        for node in range(topology.num_shards):
            node_dir = self.node_dir(node)
            os.makedirs(node_dir, exist_ok=True)
            self.workers[node] = WorkerHandle(
                f"{topology.table}-node-{node}",
                shard_worker_main,
                node_id=node,
                node_dir=node_dir,
                config=worker_config,
            )

    # -- topology ----------------------------------------------------------

    def node_dir(self, node: int) -> str:
        return os.path.join(self.root, f"node-{node}")

    @property
    def shards(self) -> range:
        return range(self.topology.num_shards)

    def replica_nodes(self, shard: int) -> tuple[int, ...]:
        """The nodes hosting ``shard``, primary first (failover order)."""
        return self.ring.replica_chain(shard)  # type: ignore[return-value]

    def hosted_shards(self, node: int) -> list[int]:
        return [s for s in self.shards if node in self.replica_nodes(s)]

    def mark_dead(self, node: int) -> None:
        with self._lock:
            self.dead.add(node)

    # -- fault injection ---------------------------------------------------

    def kill_node(self, node: int) -> None:
        """Hard-kill one worker process (the store notes it as dead)."""
        self.workers[node].kill()
        self.mark_dead(node)

    def arm_exit(self, node: int, method: str, after: int = 1) -> None:
        """Arm a fail point: the node dies mid-``method`` (reply unsent)."""
        self.workers[node].arm_exit(method, after)

    # -- replicated storage operations -------------------------------------

    def append_shard(
        self, shard: int, blob: bytes, column_meta: dict[str, str] | None
    ) -> int:
        """Append one encrypted batch to every replica of ``shard``.

        Appends require the full replica chain alive: a write acked by
        only part of the chain would fork the replicas.  (Queries, by
        contrast, need just one live replica.)
        """
        generation = 0
        for node in self.replica_nodes(shard):
            if node in self.dead:
                raise ExecutionError(
                    f"cannot append to shard {shard}: replica node {node} is "
                    "dead and appends require the full replica chain"
                )
            try:
                generation = self.workers[node].call(
                    "append",
                    table=self.topology.table,
                    shard_id=shard,
                    blob=blob,
                    column_meta=column_meta,
                )
            except WorkerDied as exc:
                self.mark_dead(node)
                raise ExecutionError(
                    f"replica node {node} died while appending to shard "
                    f"{shard}; appends require the full replica chain"
                ) from exc
        with self._lock:
            self._rollups.pop(shard, None)
        return generation

    def shard_rows(self, shard: int) -> int:
        result, _ = self.call_shard(
            shard, "rows", table=self.topology.table, shard_id=shard
        )
        return int(result)

    def truncate_shard(self, shard: int, num_rows: int) -> int:
        """Roll back uncommitted generations on every live replica."""
        dropped = 0
        for node in self.replica_nodes(shard):
            if node in self.dead:
                continue
            dropped = self.workers[node].call(
                "truncate",
                table=self.topology.table,
                shard_id=shard,
                num_rows=num_rows,
            )
        with self._lock:
            self._rollups.pop(shard, None)
        return int(dropped)

    def compact(self, target_rows: int | None = None) -> dict[int, dict | None]:
        """Compact every shard on every live replica."""
        out: dict[int, dict | None] = {}
        for shard in self.shards:
            stats: dict | None = None
            for node in self.replica_nodes(shard):
                if node in self.dead:
                    continue
                stats = self.workers[node].call(
                    "compact",
                    table=self.topology.table,
                    shard_id=shard,
                    target_rows=target_rows,
                )
            out[shard] = stats
            with self._lock:
                self._rollups.pop(shard, None)
        return out

    def rollup(self, shard: int) -> dict | None:
        """The shard's zone-map rollup (cached until the shard mutates)."""
        with self._lock:
            cached = self._rollups.get(shard)
        if cached is not None:
            return cached[1]
        for node in self.replica_nodes(shard):
            if node in self.dead:
                continue
            try:
                generation, stats = self.workers[node].call(
                    "rollup", table=self.topology.table, shard_id=shard
                )
            except WorkerDied:
                self.mark_dead(node)
                continue
            with self._lock:
                self._rollups[shard] = (int(generation), stats)
            return stats
        return None  # no live replica answered; cannot prune

    # -- failover-aware calls ----------------------------------------------

    def call_shard(self, shard: int, method: str, **kwargs: Any) -> tuple[Any, int]:
        """Call ``method`` on the first replica of ``shard`` that answers.

        Walks the replica chain; a worker dying *during* the call marks
        its node dead and retries the stage on the next replica.  Returns
        ``(result, failovers)`` where ``failovers`` counts mid-call
        deaths (pre-marked dead nodes are skipped without counting).
        """
        failovers = 0
        last: WorkerDied | None = None
        for node in self.replica_nodes(shard):
            if node in self.dead:
                continue
            try:
                return self.workers[node].call(method, **kwargs), failovers
            except WorkerDied as exc:
                self.mark_dead(node)
                failovers += 1
                last = exc
                # Annotate the trace (when one is live) so a stitched
                # query shows *which* replica died mid-call; the span
                # carries identifiers and a timestamp, nothing sensitive.
                now = time.perf_counter()
                obs_trace.record_span(
                    "shard:failover", now, now,
                    shard=shard, dead_node=node, method=method,
                )
        raise ExecutionError(
            f"all {self.topology.replicas} replica(s) of shard {shard} "
            f"are dead; cannot execute {method!r}"
        ) from last

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for node, handle in self.workers.items():
            if node in self.dead:
                handle.kill()
            else:
                handle.shutdown()
        self.dead.update(self.workers)


class ShardCoordinator:
    """Routes, scatters, fails over, and merges -- the query half."""

    def __init__(
        self,
        store: ShardedStore,
        cluster: SimulatedCluster | None = None,
        pruning: bool = True,
    ):
        self.store = store
        self.cluster = cluster or SimulatedCluster(store.config)
        self.pruning = pruning

    # -- routing and pruning -----------------------------------------------

    def route_filter(self, filt: Any) -> set[int] | None:
        """Shards that could hold matching rows, or ``None`` for all.

        Only predicates on the shard-key ciphertext column route: rows
        are placed by that column's DET token, so an equality on any
        other column says nothing about shard membership.
        """
        key_column = self.store.topology.key_column
        if isinstance(filt, srv.DetEq):
            if filt.column != key_column or filt.negate:
                return None
            return {int(self.store.ring.owner(filt.token))}
        if isinstance(filt, srv.DetIn):
            if filt.column != key_column:
                return None
            return {int(self.store.ring.owner(t)) for t in filt.tokens}
        if isinstance(filt, srv.FilterAnd):
            out: set[int] | None = None
            for child in filt.children:
                sub = self.route_filter(child)
                if sub is not None:
                    out = sub if out is None else out & sub
            return out
        if isinstance(filt, srv.FilterOr):
            union: set[int] = set()
            for child in filt.children:
                sub = self.route_filter(child)
                if sub is None:
                    return None  # one unroutable branch widens to all
                union |= sub
            return union
        return None  # ORE/plain/NOT predicates do not restrict placement

    def _empty(self, shard: int) -> bool:
        """True when the shard's rollup proves it holds zero rows (the
        ring never routed a row there, or every row was truncated)."""
        rollup = self.store.rollup(shard)
        return rollup is not None and rollup.get("rows", 1) == 0

    def _surviving_shards(self, q: srv.ServerQuery) -> list[int]:
        """Ring routing plus rollup pruning (both conservative)."""
        survivors = self.route_filter(q.filter) if q.filter is not None else None
        shards = sorted(survivors) if survivors is not None else list(self.store.shards)
        if not self.pruning:
            return shards
        shards = [s for s in shards if not self._empty(s)]
        if q.filter is not None:
            shards = [
                s
                for s in shards
                if (rollup := self.store.rollup(s)) is None
                or prune.may_match(rollup, q.filter)
            ]
        elif q.group_by is None and q.aggs and all(
            isinstance(a, srv.OreExtreme) for a in q.aggs
        ):
            # Unfiltered min/max: only shards whose rollup bound ties the
            # global winner can host it (same judgement as partitions).
            keep = prune.extreme_candidates(
                [self.store.rollup(s) for s in shards], q.aggs
            )
            if keep is not None:
                shards = [s for s, k in zip(shards, keep) if k]
        return shards

    # -- metrics folding ---------------------------------------------------

    def _absorb(self, metrics: JobMetrics, responses: Sequence[srv.ServerResponse]) -> None:
        """Fold worker-side metrics into the coordinator's job.

        Shard nodes run concurrently: per-stage makespans and wall times
        combine as a max, task times and partition counts as sums.  The
        workers' result transfers become the coordinator's gather volume
        (shuffle), paid once at the slowest shard's pace.
        """
        by_name: dict[str, StageMetrics] = {s.name: s for s in metrics.stages}
        gather_time = 0.0
        for resp in responses:
            wm = resp.metrics
            for s in wm.stages:
                have = by_name.get(s.name)
                if have is None:
                    have = StageMetrics(
                        name=s.name, task_times=[], makespan=0.0, wall_time=0.0
                    )
                    by_name[s.name] = have
                    metrics.add_stage(have)
                have.task_times.extend(s.task_times)
                have.makespan = max(have.makespan, s.makespan)
                have.wall_time = max(have.wall_time, s.wall_time)
                have.partitions_total += s.partitions_total
                have.partitions_skipped += s.partitions_skipped
            metrics.shuffle_bytes += wm.shuffle_bytes + wm.result_bytes
            gather_time = max(gather_time, wm.shuffle_time + wm.network_time)
        metrics.shuffle_time += gather_time

    # -- scatter-gather execution ------------------------------------------

    def _scatter(
        self,
        shards: Sequence[int],
        metrics: JobMetrics,
        method: str,
        kwargs_for: Any,
    ) -> list[srv.ServerResponse]:
        """Run one RPC per shard concurrently, with replica failover."""
        if not shards:
            return []
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            # copy_context(): the scatter threads inherit the caller's
            # ambient span, so per-shard worker spans parent correctly.
            futures = [
                pool.submit(
                    contextvars.copy_context().run,
                    lambda s=s: self.store.call_shard(s, method, **kwargs_for(s)),
                )
                for s in shards
            ]
            outcomes = [f.result() for f in futures]
        responses = []
        for response, failovers in outcomes:
            responses.append(response)
            metrics.failovers += failovers
        return responses

    def execute(self, q: srv.ServerQuery) -> srv.ServerResponse:
        if q.join is not None:
            raise ExecutionError(
                "joins are not supported on sharded tables: the build side "
                "would have to be broadcast across shard processes"
            )
        metrics = self.cluster.new_job()
        shards = self._surviving_shards(q)
        metrics.shards_total = self.store.topology.num_shards
        metrics.shards_skipped = metrics.shards_total - len(shards)
        responses = self._scatter(
            shards, metrics, "execute", lambda s: {"shard_id": s, "q": q}
        )
        self._absorb(metrics, responses)
        if q.group_by is None:
            response = self._merge_flat(q, responses, metrics)
        else:
            response = self._merge_grouped(q, responses, metrics)
        response.metrics = metrics
        self.cluster.account_result_transfer(metrics, response.payload_bytes)
        return response

    def _merge_flat(
        self,
        q: srv.ServerQuery,
        responses: list[srv.ServerResponse],
        metrics: JobMetrics,
    ) -> srv.ServerResponse:
        def merge() -> dict[str, Any]:
            out: dict[str, Any] = {}
            for agg in q.aggs:
                pieces: list[Any] = []
                for resp in responses:  # shard-id order == row-id order
                    pieces.extend(
                        p for p in resp.flat.get(agg.alias, []) if p is not None
                    )
                out[agg.alias] = srv.merge_payloads(agg, pieces)
            return out

        flat = self.cluster.run_driver("gather-merge", merge, metrics)
        payload_bytes = sum(
            srv._payload_nbytes(v) for v in flat.values() if v is not None
        )
        return srv.ServerResponse(
            kind="flat", flat=flat, payload_bytes=payload_bytes
        )

    def _merge_grouped(
        self,
        q: srv.ServerQuery,
        responses: list[srv.ServerResponse],
        metrics: JobMetrics,
    ) -> srv.ServerResponse:
        def merge() -> list[tuple[int, int, dict[str, Any]]]:
            combined: dict[tuple[int, int], list[dict[str, Any]]] = {}
            for resp in responses:
                for key, sfx, per_agg in resp.groups:
                    combined.setdefault((key, sfx), []).append(per_agg)
            groups: list[tuple[int, int, dict[str, Any]]] = []
            for (key, sfx), entries in combined.items():
                per: dict[str, Any] = {}
                for agg in q.aggs:
                    pieces = [
                        e[agg.alias] for e in entries
                        if e.get(agg.alias) is not None
                    ]
                    per[agg.alias] = srv.merge_payloads(agg, pieces)
                groups.append((key, sfx, per))
            return groups

        groups = self.cluster.run_driver("gather-merge", merge, metrics)
        payload_bytes = sum(
            9 + sum(
                srv._payload_nbytes(v) for v in per.values() if v is not None
            )
            for _, _, per in groups
        )
        return srv.ServerResponse(
            kind="grouped", groups=groups, payload_bytes=payload_bytes
        )

    def scan(
        self,
        table_name: str,
        columns: Sequence[str],
        filt: Any = None,
    ) -> srv.ServerResponse:
        metrics = self.cluster.new_job()
        columns = tuple(columns)
        survivors = self.route_filter(filt) if filt is not None else None
        shards = sorted(survivors) if survivors is not None else list(self.store.shards)
        populated = [s for s in self.store.shards if not self._empty(s)]
        if not populated:
            raise ExecutionError(
                f"sharded table {self.store.topology.table!r} holds no rows; "
                "nothing to scan"
            )
        shards = [s for s in shards if s in set(populated)]
        if self.pruning and filt is not None:
            shards = [
                s
                for s in shards
                if (rollup := self.store.rollup(s)) is None
                or prune.may_match(rollup, filt)
            ]
        if not shards:
            # Keep one populated shard so the reply carries correctly
            # typed empty columns (its zone maps prune everything locally).
            shards = [populated[0]]
        metrics.shards_total = self.store.topology.num_shards
        metrics.shards_skipped = metrics.shards_total - len(shards)
        responses = self._scatter(
            shards,
            metrics,
            "scan",
            lambda s: {
                "table": self.store.topology.table,
                "shard_id": s,
                "columns": columns,
                "filt": filt,
            },
        )
        responses = [r for r in responses if r is not None]
        self._absorb(metrics, responses)

        def merge() -> tuple[dict[str, np.ndarray], np.ndarray]:
            # Shard-id order: shard row-ID ranges are strided by shard
            # index, so this concatenation is also global row-ID order.
            cols = {
                c: np.concatenate([r.flat["columns"][c] for r in responses])
                for c in columns
            }
            ids = np.concatenate([r.flat["ids"] for r in responses])
            return cols, ids

        cols, ids = self.cluster.run_driver("gather-merge", merge, metrics)
        payload_bytes = sum(resp.payload_bytes for resp in responses)
        response = srv.ServerResponse(kind="scan", payload_bytes=payload_bytes)
        response.flat = {"columns": cols, "ids": ids}
        response.metrics = metrics
        self.cluster.account_result_transfer(metrics, payload_bytes)
        return response
