"""Cryptographic substrate for Seabed.

Modules:

- :mod:`repro.crypto.kernel` -- the batch :class:`Kernel` protocol every
  scheme implements (``encrypt_column`` / ``decrypt_column`` /
  ``compare_column`` / ``pad_range``, array-in / array-out), the
  plaintext :class:`PlainKernel`, and the warn-once deprecation helper
  for the legacy per-value entry points.
- :mod:`repro.crypto.prf` -- keyed pseudo-random functions (BLAKE2b,
  vectorised SplitMix64 family, from-scratch AES-CTR, and the batch
  AES-NI path through the ``cryptography`` package).
- :mod:`repro.crypto.aes` -- from-scratch FIPS-197 AES-128 with CTR mode.
- :mod:`repro.crypto.ashe` -- the paper's additively symmetric homomorphic
  encryption scheme (Section 3.1).
- :mod:`repro.crypto.det` -- deterministic, invertible encryption (a
  Luby-Rackoff Feistel PRP) plus dictionary encoding for strings.
- :mod:`repro.crypto.ore` -- Chenette et al. order-revealing encryption
  (Appendix A.3).
- :mod:`repro.crypto.paillier` -- the Paillier baseline used by
  CryptDB/Monomi-style systems.
- :mod:`repro.crypto.keys` -- master-key / per-column subkey derivation.
"""

from repro.crypto.ashe import AsheCiphertext, AsheScheme
from repro.crypto.det import DetScheme, DictionaryEncoder
from repro.crypto.kernel import (
    KERNEL_OPS,
    Kernel,
    KernelUnsupported,
    PlainKernel,
    kernel_ops,
    validate_kernel,
)
from repro.crypto.keys import KeyChain
from repro.crypto.ore import OreScheme
from repro.crypto.paillier import PaillierKeyPair, PaillierScheme
from repro.crypto.prf import (
    HAVE_AESNI,
    AesCtrPrf,
    AesNiCtrPrf,
    Blake2Prf,
    Prf,
    SplitMix64Prf,
    prf_from_name,
)

__all__ = [
    "AesCtrPrf",
    "AesNiCtrPrf",
    "AsheCiphertext",
    "AsheScheme",
    "Blake2Prf",
    "DetScheme",
    "DictionaryEncoder",
    "HAVE_AESNI",
    "KERNEL_OPS",
    "Kernel",
    "KernelUnsupported",
    "KeyChain",
    "OreScheme",
    "PaillierKeyPair",
    "PaillierScheme",
    "PlainKernel",
    "Prf",
    "SplitMix64Prf",
    "kernel_ops",
    "prf_from_name",
    "validate_kernel",
]
