"""Cryptographic substrate for Seabed.

Modules:

- :mod:`repro.crypto.prf` -- keyed pseudo-random functions (BLAKE2b,
  vectorised SplitMix64 family, AES-CTR).
- :mod:`repro.crypto.aes` -- from-scratch FIPS-197 AES-128 with CTR mode.
- :mod:`repro.crypto.ashe` -- the paper's additively symmetric homomorphic
  encryption scheme (Section 3.1).
- :mod:`repro.crypto.det` -- deterministic, invertible encryption (a
  Luby-Rackoff Feistel PRP) plus dictionary encoding for strings.
- :mod:`repro.crypto.ore` -- Chenette et al. order-revealing encryption
  (Appendix A.3).
- :mod:`repro.crypto.paillier` -- the Paillier baseline used by
  CryptDB/Monomi-style systems.
- :mod:`repro.crypto.keys` -- master-key / per-column subkey derivation.
"""

from repro.crypto.ashe import AsheCiphertext, AsheScheme
from repro.crypto.det import DetScheme, DictionaryEncoder
from repro.crypto.keys import KeyChain
from repro.crypto.ore import OreScheme
from repro.crypto.paillier import PaillierKeyPair, PaillierScheme
from repro.crypto.prf import AesCtrPrf, Blake2Prf, Prf, SplitMix64Prf, prf_from_name

__all__ = [
    "AesCtrPrf",
    "AsheCiphertext",
    "AsheScheme",
    "Blake2Prf",
    "DetScheme",
    "DictionaryEncoder",
    "KeyChain",
    "OreScheme",
    "PaillierKeyPair",
    "PaillierScheme",
    "Prf",
    "SplitMix64Prf",
    "prf_from_name",
]
