"""From-scratch AES-128 (FIPS-197) with a CTR-mode keystream.

The Seabed prototype computes its PRF with hardware-accelerated AES
(Intel AES-NI), reported at 47 ns per counter-mode operation in Table 1.
Python has no standard-library AES, and this reproduction installs no
third-party crypto, so we implement the cipher from the specification:
S-box built from the GF(2^8) multiplicative inverse plus the affine map,
column-major state, and the standard 10-round schedule.

This implementation favours clarity over speed; it exists to

1. reproduce the Table 1 microbenchmark row ("AES counter mode") with a
   real AES, and
2. back the :class:`repro.crypto.prf.AesCtrPrf` fidelity PRF.

Bulk encryption paths use the vectorised PRF instead (see
``repro.crypto.prf``).
"""

from __future__ import annotations

from repro.errors import CryptoError


def _build_tables() -> tuple[list[int], list[int], list[int]]:
    """Build the S-box, inverse S-box, and the xtime (mul-by-2) table."""
    # Exp/log tables over GF(2^8) using generator 3 (x+1).
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 = x ^ xtime(x)
        xt = (x << 1) ^ (0x11B if x & 0x80 else 0)
        x ^= xt & 0xFF
    exp[255] = exp[0]

    def gf_inverse(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    def rotl8(b: int, n: int) -> int:
        return ((b << n) | (b >> (8 - n))) & 0xFF

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for a in range(256):
        b = gf_inverse(a)
        s = b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
        sbox[a] = s
        inv_sbox[s] = a

    xtime = [((a << 1) ^ (0x11B if a & 0x80 else 0)) & 0xFF for a in range(256)]
    return sbox, inv_sbox, xtime


_SBOX, _INV_SBOX, _XTIME = _build_tables()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class Aes128:
    """AES-128 block cipher: 16-byte key, 16-byte blocks, 10 rounds."""

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise CryptoError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """Expand to 11 round keys, each a flat 16-byte list (column-major)."""
        words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(11):
            rk = []
            for c in range(4):
                rk.extend(words[4 * r + c])
            round_keys.append(rk)
        return round_keys

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block; returns 16 ciphertext bytes."""
        if len(block) != 16:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        # State is kept in FIPS-197 column-major order: s[r + 4c] holds
        # row r, column c; the input bytes fill columns first.
        s = list(block)
        self._add_round_key(s, 0)
        for rnd in range(1, 10):
            self._sub_bytes(s)
            self._shift_rows(s)
            self._mix_columns(s)
            self._add_round_key(s, rnd)
        self._sub_bytes(s)
        self._shift_rows(s)
        self._add_round_key(s, 10)
        return bytes(s)

    def _add_round_key(self, s: list[int], rnd: int) -> None:
        rk = self._round_keys[rnd]
        for i in range(16):
            s[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(s: list[int]) -> None:
        for i in range(16):
            s[i] = _SBOX[s[i]]

    @staticmethod
    def _shift_rows(s: list[int]) -> None:
        # Row r rotates left by r positions. With column-major layout,
        # row r occupies indices r, r+4, r+8, r+12.
        s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
        s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
        s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]

    @staticmethod
    def _mix_columns(s: list[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            all_xor = a0 ^ a1 ^ a2 ^ a3
            s[c] = a0 ^ all_xor ^ _XTIME[a0 ^ a1]
            s[c + 1] = a1 ^ all_xor ^ _XTIME[a1 ^ a2]
            s[c + 2] = a2 ^ all_xor ^ _XTIME[a2 ^ a3]
            s[c + 3] = a3 ^ all_xor ^ _XTIME[a3 ^ a0]


def ctr_keystream(key: bytes, initial_counter: int, nblocks: int) -> bytes:
    """Generate ``nblocks`` 16-byte keystream blocks in counter mode.

    The counter is a 128-bit big-endian integer incremented per block,
    matching NIST SP 800-38A.
    """
    aes = Aes128(key)
    out = bytearray()
    counter = initial_counter & ((1 << 128) - 1)
    for _ in range(nblocks):
        out.extend(aes.encrypt_block(counter.to_bytes(16, "big")))
        counter = (counter + 1) & ((1 << 128) - 1)
    return bytes(out)


def ctr_encrypt(key: bytes, initial_counter: int, data: bytes) -> bytes:
    """Encrypt (or decrypt: CTR is symmetric) ``data`` under AES-128-CTR."""
    nblocks = (len(data) + 15) // 16
    stream = ctr_keystream(key, initial_counter, nblocks)
    return bytes(d ^ k for d, k in zip(data, stream))
