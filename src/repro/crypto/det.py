"""Deterministic encryption (DET) and dictionary encoding for strings.

Seabed falls back to DET for dimensions that participate in joins or that
the SPLASHE storage budget cannot cover (Section 4.2).  DET must support
server-side equality checks, so each plaintext maps to exactly one
ciphertext -- which is precisely what makes it vulnerable to the frequency
attacks SPLASHE defends against (demonstrated in
:mod:`repro.attacks.frequency`).

Construction: a 4-round Luby-Rackoff Feistel network over 64-bit blocks
with PRF round functions, i.e. a keyed pseudo-random *permutation*.  Being
a permutation it is invertible, so the proxy can decrypt DET group-by keys
returned by the server without keeping a value dictionary.

Two round-function backends mirror :mod:`repro.crypto.prf`:
``blake2`` (cryptographic, scalar) and ``fast`` (SplitMix64 mixing,
vectorised; models hardware AES).

Strings are handled by :class:`DictionaryEncoder`: a column-local mapping
from values to dense integer codes.  The code, not the string, is what DET
encrypts; the dictionary never leaves the client.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.crypto.kernel import warn_deprecated_once
from repro.crypto.prf import MASK64
from repro.errors import CryptoError, KernelUnsupported

_U64 = np.uint64
_MASK32 = 0xFFFFFFFF
_MIX_MUL_1 = 0xBF58476D1CE4E5B9
_MIX_MUL_2 = 0x94D049BB133111EB


def _mix_int(x: int) -> int:
    x &= MASK64
    x ^= x >> 30
    x = (x * _MIX_MUL_1) & MASK64
    x ^= x >> 27
    x = (x * _MIX_MUL_2) & MASK64
    return x ^ (x >> 31)


def _mix_np(x: np.ndarray) -> np.ndarray:
    x = x ^ (x >> _U64(30))
    x = x * _U64(_MIX_MUL_1)
    x = x ^ (x >> _U64(27))
    x = x * _U64(_MIX_MUL_2)
    return x ^ (x >> _U64(31))


class DetScheme:
    """Deterministic 64-bit PRP: 4-round Feistel over 32-bit halves."""

    ROUNDS = 4

    #: Kernel-protocol ops this scheme cannot provide: DET is a
    #: permutation with no additive mask stream.
    KERNEL_UNSUPPORTED = frozenset({"pad_range"})

    def __init__(self, key: bytes, backend: str = "fast"):
        if len(key) < 16:
            raise CryptoError("DET key must be at least 16 bytes")
        if backend not in ("fast", "blake2"):
            raise CryptoError(f"unknown DET backend {backend!r}")
        self._backend = backend
        material = hashlib.blake2b(key, digest_size=16 * self.ROUNDS, person=b"seabedDET").digest()
        self._round_keys = [
            (
                int.from_bytes(material[16 * r : 16 * r + 8], "little"),
                int.from_bytes(material[16 * r + 8 : 16 * r + 16], "little"),
            )
            for r in range(self.ROUNDS)
        ]
        self._blake_keys = [
            hashlib.blake2b(key + bytes([r]), digest_size=32, person=b"seabedDETr").digest()
            for r in range(self.ROUNDS)
        ]

    # -- round functions ---------------------------------------------------

    def _round_int(self, r: int, half: int) -> int:
        if self._backend == "fast":
            k0, k1 = self._round_keys[r]
            return _mix_int(_mix_int(half + k0) ^ k1) & _MASK32
        digest = hashlib.blake2b(
            half.to_bytes(4, "little"), key=self._blake_keys[r], digest_size=4
        ).digest()
        return int.from_bytes(digest, "little")

    def _round_np(self, r: int, half: np.ndarray) -> np.ndarray:
        if self._backend == "fast":
            k0, k1 = self._round_keys[r]
            return _mix_np(_mix_np(half + _U64(k0)) ^ _U64(k1)) & _U64(_MASK32)
        out = np.empty(half.shape, dtype=_U64)
        for j, h in enumerate(half.tolist()):
            out[j] = self._round_int(r, h)
        return out

    # -- scalar API (deprecated shims + reference path) ----------------------

    def encrypt_one(self, m: int) -> int:
        """Deprecated per-value entry point; use :meth:`encrypt_column`."""
        warn_deprecated_once(
            "DetScheme.encrypt_one",
            "DetScheme.encrypt_one(m) is deprecated; encrypt whole columns "
            "with the batch kernel DetScheme.encrypt_column(values) "
            "(query constants go through token())",
        )
        return self._encrypt_one(m)

    def decrypt_one(self, c: int) -> int:
        """Deprecated per-value entry point; use :meth:`decrypt_column`."""
        warn_deprecated_once(
            "DetScheme.decrypt_one",
            "DetScheme.decrypt_one(c) is deprecated; decrypt whole columns "
            "with the batch kernel DetScheme.decrypt_column(cipher)",
        )
        return self._decrypt_one(c)

    def _encrypt_one(self, m: int) -> int:
        """Per-row reference path: encrypt one 64-bit value.

        Retained without a warning as the ground truth for the property
        tests, the kernel microbenchmark, and :meth:`token`.
        """
        left, right = (m >> 32) & _MASK32, m & _MASK32
        for r in range(self.ROUNDS):
            left, right = right, left ^ self._round_int(r, right)
        return (left << 32) | right

    def _decrypt_one(self, c: int) -> int:
        left, right = (c >> 32) & _MASK32, c & _MASK32
        for r in reversed(range(self.ROUNDS)):
            left, right = right ^ self._round_int(r, left), left
        return (left << 32) | right

    # -- vectorised API --------------------------------------------------------

    def encrypt_column(self, values: np.ndarray, start_id: int = 0) -> np.ndarray:
        """Encrypt an int column (codes) into uint64 DET ciphertexts.

        ``start_id`` is accepted for Kernel-protocol uniformity and
        ignored: DET ciphertexts do not depend on row identity.
        """
        v = np.asarray(values)
        x = v.astype(np.int64, copy=False).view(_U64) if v.dtype != _U64 else v
        left = x >> _U64(32)
        right = x & _U64(_MASK32)
        for r in range(self.ROUNDS):
            left, right = right, left ^ self._round_np(r, right)
        return (left << _U64(32)) | right

    def decrypt_column(self, cipher: np.ndarray, start_id: int = 0) -> np.ndarray:
        c = np.asarray(cipher, dtype=_U64)
        left = c >> _U64(32)
        right = c & _U64(_MASK32)
        for r in reversed(range(self.ROUNDS)):
            left, right = right ^ self._round_np(r, left), left
        return ((left << _U64(32)) | right).view(np.int64)

    def compare_column(self, cipher: np.ndarray, token) -> np.ndarray:
        """Equality of a ciphertext column against one token, as int8.

        DET reveals equality only, so the result is 0 (equal) or 1
        (unequal) -- never the ordering sign the ORE kernel produces.
        """
        c = np.asarray(cipher, dtype=_U64)
        return np.where(c == _U64(int(token)), 0, 1).astype(np.int8)

    def pad_range(self, start_id: int, count: int) -> np.ndarray:
        """DET has no additive mask stream."""
        raise KernelUnsupported("DET has no pad stream")

    def token(self, m: int) -> int:
        """Equality token for a query constant (same as encryption)."""
        return self._encrypt_one(m)


class DictionaryEncoder:
    """Client-side value <-> dense-code mapping for categorical columns.

    Codes are assigned in first-seen order.  Join columns that must match
    across tables share one encoder instance (the planner arranges this).
    """

    def __init__(self) -> None:
        self._index: dict[Hashable, int] = {}
        self._values: list[Hashable] = []

    @property
    def cardinality(self) -> int:
        return len(self._values)

    def code(self, value: Hashable) -> int:
        """Code for ``value``, assigning a fresh one if unseen."""
        found = self._index.get(value)
        if found is not None:
            return found
        code = len(self._values)
        self._index[value] = code
        self._values.append(value)
        return code

    def lookup(self, value: Hashable) -> int:
        """Code for ``value``; raises if the value was never encoded."""
        try:
            return self._index[value]
        except KeyError:
            raise CryptoError(f"value {value!r} not present in dictionary") from None

    def value(self, code: int) -> Hashable:
        if not 0 <= code < len(self._values):
            raise CryptoError(f"dictionary code {code} out of range")
        return self._values[code]

    def encode_column(self, values: Iterable[Hashable]) -> np.ndarray:
        return np.fromiter((self.code(v) for v in values), dtype=np.int64)

    def decode_column(self, codes: Sequence[int] | np.ndarray) -> list[Hashable]:
        return [self.value(int(c)) for c in codes]

    def known_values(self) -> list[Hashable]:
        return list(self._values)
