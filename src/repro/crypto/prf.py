"""Keyed pseudo-random functions ``F_k : Z_{2^64} -> Z_{2^64}``.

ASHE (Section 3.1 of the paper) is built on a PRF over row identifiers.
The paper suggests two instantiations -- ``H(i || k) mod n`` for a
cryptographic hash ``H``, or AES used as a pseudo-random permutation -- and
its prototype uses AES-NI hardware instructions to evaluate the PRF at
47 ns per 128-bit block (Table 1).

This module provides three interchangeable backends:

- :class:`Blake2Prf` -- a keyed BLAKE2b MAC.  This is the cryptographically
  honest default: BLAKE2b in keyed mode is a PRF under standard
  assumptions.  It costs roughly a microsecond per evaluation in Python,
  so it is used where only a handful of evaluations are needed (range
  endpoints during decryption) and in tests.
- :class:`SplitMix64Prf` -- a vectorised mixing function (the SplitMix64
  finalizer, double-applied with key injection).  It is **not** a
  cryptographic PRF, but it is statistically indistinguishable from random
  for every test in this repository and it vectorises over numpy arrays,
  which restores the throughput relationship the paper obtains from
  AES-NI (PRF evaluation far cheaper than Paillier, tens of ns per
  element).  DESIGN.md documents this substitution.
- :class:`AesCtrPrf` -- our from-scratch AES-128 in counter mode.  One AES
  block yields two 64-bit PRF outputs, mirroring the paper's optimisation
  of carving multiple pseudo-random numbers out of a single AES operation
  (Section 4.3).  Pure-Python AES is slow; this backend exists for
  fidelity and for the Table 1 microbenchmark.
- :class:`AesNiCtrPrf` -- the same AES-128-CTR construction routed through
  the ``cryptography`` package's OpenSSL backend, which uses AES-NI
  hardware instructions where available.  Bit-identical to
  :class:`AesCtrPrf` (the property tests cross-check them on random keys
  and blocks) but batch-evaluated: one ECB call encrypts a whole column's
  counter blocks, recovering the paper's 47 ns-per-op Table 1 price.

All backends operate on the identifier domain ``Z_{2^64}`` with wraparound,
so ``F_k(i - 1)`` is well defined for ``i = 0`` (it wraps to
``F_k(2^64 - 1)``); the encryptor never assigns that identifier to a row.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import CryptoError

try:  # hardware AES via OpenSSL; gated so the core package needs only numpy
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    HAVE_AESNI = True
except ImportError:  # pragma: no cover - exercised only on minimal installs
    Cipher = algorithms = modes = None
    HAVE_AESNI = False

MASK64 = (1 << 64) - 1

#: Odd constants from the SplitMix64 reference implementation.
_MIX_MUL_1 = 0xBF58476D1CE4E5B9
_MIX_MUL_2 = 0x94D049BB133111EB
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15

_U64 = np.uint64


def _require_key(key: bytes, minimum: int = 16) -> bytes:
    if not isinstance(key, (bytes, bytearray)):
        raise CryptoError(f"PRF key must be bytes, got {type(key).__name__}")
    if len(key) < minimum:
        raise CryptoError(f"PRF key must be at least {minimum} bytes, got {len(key)}")
    return bytes(key)


class Prf(ABC):
    """A keyed PRF over 64-bit identifiers.

    Implementations must be deterministic per key and support random access
    (``eval_one``), bulk random access (``eval_many``), and contiguous
    streams (``eval_range``), because ASHE encryption walks contiguous IDs
    while decryption touches only range endpoints.
    """

    name: str = "prf"

    @abstractmethod
    def eval_one(self, i: int) -> int:
        """Return ``F_k(i)`` as a Python int in ``[0, 2^64)``."""

    def eval_many(self, ids: np.ndarray) -> np.ndarray:
        """Return ``F_k`` over an array of identifiers (uint64 in/out)."""
        flat = np.asarray(ids, dtype=_U64).ravel()
        out = np.empty(flat.shape, dtype=_U64)
        for j, i in enumerate(flat.tolist()):
            out[j] = self.eval_one(i)
        return out.reshape(np.shape(ids))

    def eval_range(self, start: int, count: int) -> np.ndarray:
        """Return ``F_k`` over the contiguous IDs ``start .. start+count-1``.

        ``start`` may be ``-1`` (it wraps mod ``2^64``), which is how the
        encryptor obtains ``F_k(i - 1)`` for the first row of a table.
        """
        if count < 0:
            raise CryptoError(f"negative PRF range count: {count}")
        ids = np.arange(count, dtype=_U64) + _U64(start & MASK64)
        return self.eval_many(ids)


class Blake2Prf(Prf):
    """Keyed BLAKE2b truncated to 64 bits: the cryptographic default."""

    name = "blake2"

    def __init__(self, key: bytes):
        self._key = _require_key(key)

    def eval_one(self, i: int) -> int:
        digest = hashlib.blake2b(
            (i & MASK64).to_bytes(8, "little"), key=self._key, digest_size=8
        ).digest()
        return int.from_bytes(digest, "little")


class SplitMix64Prf(Prf):
    """Vectorised keyed mixer modelling the paper's AES-NI accelerated PRF.

    ``F_k(i) = mix(mix(i + k0) ^ k1) ^ k2`` where ``mix`` is the SplitMix64
    finalizer.  Each stage is a 64-bit avalanche permutation, so distinct
    inputs map to distinct-looking outputs with full bit diffusion.  Not
    cryptographically secure; see the module docstring.
    """

    name = "splitmix64"

    def __init__(self, key: bytes):
        key = _require_key(key)
        seed = hashlib.blake2b(key, digest_size=24, person=b"seabedPRF").digest()
        self._k0 = int.from_bytes(seed[0:8], "little") | 1
        self._k1 = int.from_bytes(seed[8:16], "little")
        self._k2 = int.from_bytes(seed[16:24], "little")
        self._k0_np = _U64(self._k0)
        self._k1_np = _U64(self._k1)
        self._k2_np = _U64(self._k2)

    @staticmethod
    def _mix_int(x: int) -> int:
        x ^= x >> 30
        x = (x * _MIX_MUL_1) & MASK64
        x ^= x >> 27
        x = (x * _MIX_MUL_2) & MASK64
        x ^= x >> 31
        return x

    def eval_one(self, i: int) -> int:
        x = ((i & MASK64) + self._k0) & MASK64
        x = self._mix_int(x) ^ self._k1
        return self._mix_int(x) ^ self._k2

    @staticmethod
    def _mix_np(x: np.ndarray) -> np.ndarray:
        x = x ^ (x >> _U64(30))
        x = x * _U64(_MIX_MUL_1)
        x = x ^ (x >> _U64(27))
        x = x * _U64(_MIX_MUL_2)
        return x ^ (x >> _U64(31))

    def eval_many(self, ids: np.ndarray) -> np.ndarray:
        x = np.asarray(ids, dtype=_U64) + self._k0_np
        x = self._mix_np(x) ^ self._k1_np
        return self._mix_np(x) ^ self._k2_np

    def eval_range(self, start: int, count: int) -> np.ndarray:
        if count < 0:
            raise CryptoError(f"negative PRF range count: {count}")
        ids = np.arange(count, dtype=_U64) + _U64(start & MASK64)
        return self.eval_many(ids)


class AesCtrPrf(Prf):
    """AES-128 in counter mode; one block yields two 64-bit outputs.

    Identifier ``i`` maps to the big-endian counter block ``i >> 1``; the
    low bit of ``i`` selects the 64-bit lane.  This mirrors Section 4.3 of
    the paper, where a single hardware AES operation produces multiple
    pseudo-random numbers for 64-bit data types.
    """

    name = "aes-ctr"

    def __init__(self, key: bytes):
        from repro.crypto.aes import Aes128

        key = _require_key(key, minimum=16)
        self._aes = Aes128(key[:16])
        # One (block index, block bytes) pair, kept in a single attribute
        # so concurrent readers (query_many fans decryption out across
        # threads) always see a consistent index/bytes snapshot.
        self._cache: tuple[int, bytes] = (-1, b"")

    def eval_one(self, i: int) -> int:
        i &= MASK64
        block_index = i >> 1
        cached = self._cache
        if cached[0] != block_index:
            cached = (
                block_index,
                self._aes.encrypt_block(block_index.to_bytes(16, "big")),
            )
            self._cache = cached
        lane = i & 1
        return int.from_bytes(cached[1][8 * lane : 8 * lane + 8], "big")


class AesNiCtrPrf(Prf):
    """AES-128-CTR through ``cryptography``'s AES-NI path, batch-evaluated.

    Identical construction to :class:`AesCtrPrf` -- identifier ``i`` maps
    to the big-endian counter block ``i >> 1``, the low bit of ``i``
    selects the 64-bit lane -- but a whole array of counter blocks is
    encrypted with a single ECB call (CTR keystream *is* ECB over the
    counter blocks), so the per-op cost approaches the paper's 47 ns.
    """

    name = "aes-ni"

    def __init__(self, key: bytes):
        if not HAVE_AESNI:
            raise CryptoError(
                "the 'cryptography' package is not installed; "
                "the aes-ni PRF backend is unavailable (use aes-ctr)"
            )
        key = _require_key(key, minimum=16)
        self._cipher = Cipher(algorithms.AES(key[:16]), modes.ECB())

    def _blocks(self, block_ids: np.ndarray) -> np.ndarray:
        """ECB-encrypt counter blocks; returns an ``(n, 2)`` lane array.

        Column 0 holds the first eight big-endian bytes of each AES output
        (lane 0), matching :meth:`AesCtrPrf.eval_one` exactly.
        """
        counters = np.zeros((block_ids.size, 2), dtype=">u8")
        counters[:, 1] = block_ids
        enc = self._cipher.encryptor()
        out = enc.update(counters.tobytes()) + enc.finalize()
        return np.frombuffer(out, dtype=">u8").astype(_U64).reshape(-1, 2)

    def eval_one(self, i: int) -> int:
        return int(self.eval_many(np.asarray([i & MASK64], dtype=_U64))[0])

    def eval_many(self, ids: np.ndarray) -> np.ndarray:
        flat = np.asarray(ids, dtype=_U64).ravel()
        if flat.size == 0:
            return np.empty(np.shape(ids), dtype=_U64)
        lanes = self._blocks(flat >> _U64(1))
        out = np.where(flat & _U64(1), lanes[:, 1], lanes[:, 0])
        return out.reshape(np.shape(ids))

    def eval_range(self, start: int, count: int) -> np.ndarray:
        if count < 0:
            raise CryptoError(f"negative PRF range count: {count}")
        start &= MASK64
        if count == 0:
            return np.empty(0, dtype=_U64)
        if start + count > (1 << 64):  # identifier wraparound: split the stream
            head = (1 << 64) - start
            return np.concatenate(
                [self.eval_range(start, head), self.eval_range(0, count - head)]
            )
        first_block = start >> 1
        last_block = (start + count - 1) >> 1
        block_ids = np.arange(first_block, last_block + 1, dtype=_U64)
        lanes = self._blocks(block_ids).reshape(-1)
        offset = start - 2 * first_block
        return lanes[offset : offset + count].copy()


_BACKENDS = {
    "blake2": Blake2Prf,
    "splitmix64": SplitMix64Prf,
    "aes-ctr": AesCtrPrf,
    "aes-ni": AesNiCtrPrf,
}


def prf_from_name(name: str, key: bytes) -> Prf:
    """Instantiate a PRF backend by name
    (``blake2 | splitmix64 | aes-ctr | aes-ni``)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise CryptoError(
            f"unknown PRF backend {name!r}; choose from {sorted(_BACKENDS)}"
        ) from None
    return cls(key)
