"""Key management: a master key with derived per-column subkeys.

Section 4.2 of the paper: "We choose a different secret key k for each new
column we encrypt."  The :class:`KeyChain` derives those column keys from
one master secret with a domain-separated BLAKE2b KDF, so the client only
stores a single key and the derivation is deterministic across sessions.
"""

from __future__ import annotations

import hashlib
import secrets

from repro.errors import CryptoError


class KeyChain:
    """Derives per-(table, column, purpose) subkeys from a master key."""

    KEY_BYTES = 32

    def __init__(self, master_key: bytes):
        if len(master_key) < 16:
            raise CryptoError("master key must be at least 16 bytes")
        self._master = bytes(master_key)

    @classmethod
    def generate(cls) -> "KeyChain":
        """Fresh random master key from the OS CSPRNG."""
        return cls(secrets.token_bytes(cls.KEY_BYTES))

    @classmethod
    def from_passphrase(cls, passphrase: str, salt: bytes = b"seabed-repro") -> "KeyChain":
        """Derive a master key from a passphrase (scrypt, interactive params)."""
        key = hashlib.scrypt(
            passphrase.encode(), salt=salt, n=2**14, r=8, p=1, dklen=cls.KEY_BYTES
        )
        return cls(key)

    def derive(self, *labels: str) -> bytes:
        """Derive a 32-byte subkey for a label path such as
        ``("sales", "revenue", "ashe")``."""
        if not labels:
            raise CryptoError("at least one derivation label is required")
        h = hashlib.blake2b(key=self._master, digest_size=self.KEY_BYTES, person=b"seabedKDF")
        for label in labels:
            encoded = label.encode()
            h.update(len(encoded).to_bytes(2, "big"))
            h.update(encoded)
        return h.digest()

    def column_key(self, table: str, column: str, scheme: str) -> bytes:
        """Subkey for one encrypted column under one scheme."""
        return self.derive(table, column, scheme)
