"""ASHE: additively symmetric homomorphic encryption (paper Section 3.1).

The scheme, over the additive group ``Z_n`` with ``n = 2^64`` here:

- ``Enc_k(m, i) = ((m - F_k(i) + F_k(i-1)) mod n, {i})``
- ``(c1, S1) + (c2, S2) = ((c1 + c2) mod n, S1 u S2)``
- ``Dec_k(c, S) = (c + sum_{i in S} (F_k(i) - F_k(i-1))) mod n``

The pads telescope over consecutive identifiers: decrypting the sum of rows
``a..b`` needs only ``F_k(b) - F_k(a-1)`` -- two PRF evaluations regardless
of the range length (Section 3.2).  With the ID list stored as runs (see
:mod:`repro.idlist`), decryption costs two PRF calls *per run*.

We use ``n = 2^64`` so ciphertext arithmetic is native uint64 wraparound,
which numpy vectorises; signed plaintexts round-trip through two's
complement (:func:`to_signed`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.crypto.kernel import warn_deprecated_once
from repro.crypto.prf import MASK64, Prf
from repro.errors import CryptoError, DecryptionError, KernelUnsupported
from repro.idlist import IdList

_U64 = np.uint64
_ONE = _U64(1)

#: Number of AES-equivalent PRF evaluations per decryption is tracked so the
#: benchmarks can report the paper's "average AES operations" statistic.


def to_signed(value: int) -> int:
    """Interpret a ``Z_{2^64}`` group element as a two's-complement int64+."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def from_signed(value: int) -> int:
    """Map a (possibly negative) Python int into ``Z_{2^64}``."""
    return value & MASK64


@dataclass
class AsheCiphertext:
    """An ASHE ciphertext: a group element plus the ID multiset.

    IDs are unique per row, and aggregation touches each row at most once,
    so the multiset is represented by the set-like :class:`IdList`.
    """

    value: int
    ids: IdList

    def __add__(self, other: "AsheCiphertext") -> "AsheCiphertext":
        if not isinstance(other, AsheCiphertext):
            return NotImplemented
        return AsheCiphertext(
            (self.value + other.value) & MASK64, self.ids.union(other.ids)
        )

    def __radd__(self, other):
        # Supports sum(..., start=0) in client code.
        if other == 0:
            return self
        return self.__add__(other)

    @classmethod
    def zero(cls) -> "AsheCiphertext":
        """The additive identity (empty ID list)."""
        return cls(0, IdList.empty())


class AsheScheme:
    """ASHE keyed by a PRF instance; stateless apart from the PRF key.

    The caller supplies identifiers (Seabed's encryption module assigns
    consecutive row IDs per table so that range telescoping applies).
    Identifier 0 is allowed; its pad reaches back to ``F_k(2^64 - 1)``.
    """

    #: Kernel-protocol ops this scheme cannot provide: ASHE ciphertexts
    #: reveal no order, so there is no compare.
    KERNEL_UNSUPPORTED = frozenset({"compare_column"})

    def __init__(self, prf: Prf):
        self._prf = prf
        self.prf_evals = 0  # running count, for the paper's AES-op statistic
        # query_many() decrypts on several threads; `+=` on the counter is
        # not atomic, so bumps go through a lock (one acquisition per
        # vectorised call, not per row).
        self._evals_lock = threading.Lock()

    def _bump(self, evals: int) -> None:
        with self._evals_lock:
            self.prf_evals += evals

    # -- scalar interface (deprecated shim + reference path) ----------------

    def encrypt(self, m: int, i: int) -> AsheCiphertext:
        """Deprecated per-value entry point; use :meth:`encrypt_column`."""
        warn_deprecated_once(
            "AsheScheme.encrypt",
            "AsheScheme.encrypt(m, i) is deprecated; encrypt whole columns "
            "with the batch kernel AsheScheme.encrypt_column(values, start_id)",
        )
        return self._encrypt_one(m, i)

    def _encrypt_one(self, m: int, i: int) -> AsheCiphertext:
        """Per-row reference path: two scalar PRF evaluations, no batching.

        Retained (without a deprecation warning) as the ground truth the
        property tests and kernel microbenchmarks compare the batch
        kernels against.
        """
        pad = self._prf.eval_one(i) - self._prf.eval_one((i - 1) & MASK64)
        self._bump(2)
        return AsheCiphertext((from_signed(m) - pad) & MASK64, IdList.from_range(i, i + 1))

    def decrypt(self, ct: AsheCiphertext) -> int:
        """Decrypt to a signed integer (sum of the encrypted plaintexts)."""
        return to_signed((ct.value + self._pad_sum(ct.ids)) & MASK64)

    def add(self, a: AsheCiphertext, b: AsheCiphertext) -> AsheCiphertext:
        return a + b

    # -- vectorised column interface --------------------------------------

    def pad_range(self, start_id: int, count: int) -> np.ndarray:
        """Pad stream ``F(i) - F(i-1)`` for IDs ``start_id..start_id+count-1``.

        One contiguous PRF stream of ``count + 1`` evaluations covers every
        pad, because adjacent rows share a boundary evaluation -- this is
        the per-partition precomputation that makes whole-column ASHE
        encryption and decryption a single vectorised pass.
        """
        if count < 0:
            raise CryptoError(f"negative pad range count: {count}")
        if count == 0:
            return np.empty(0, _U64)
        stream = self._prf.eval_range(start_id - 1, count + 1)
        self._bump(count + 1)
        return stream[1:] - stream[:-1]

    def encrypt_column(self, values: np.ndarray, start_id: int = 0) -> np.ndarray:
        """Encrypt a column whose rows get IDs ``start_id .. start_id+n-1``.

        Returns the uint64 ciphertext array; the IDs are implicit (the
        caller records ``start_id``).
        """
        v = np.asarray(values)
        if v.ndim != 1:
            raise CryptoError("encrypt_column expects a 1-D array")
        if v.size == 0:
            return np.empty(0, _U64)
        plain = v.astype(np.int64, copy=False).view(_U64) if v.dtype != _U64 else v
        # c[j] = m[j] - (F(start+j) - F(start+j-1))
        return plain - self.pad_range(start_id, v.size)

    def decrypt_column(self, cipher: np.ndarray, start_id: int = 0) -> np.ndarray:
        """Invert :meth:`encrypt_column`; returns int64 plaintexts."""
        c = np.asarray(cipher, dtype=_U64)
        if c.size == 0:
            return np.empty(0, np.int64)
        return (c + self.pad_range(start_id, c.size)).view(np.int64)

    def compare_column(self, cipher: np.ndarray, token) -> np.ndarray:
        """ASHE reveals no order; the Kernel op is structurally absent."""
        raise KernelUnsupported("ASHE ciphertexts do not support comparison")

    def decrypt_rows(self, cipher: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Decrypt scattered single rows (scan results).

        Dense ID sets ride the contiguous pad stream (see
        :meth:`_pads_for`); truly scattered rows pay two PRF evaluations
        each.
        """
        c = np.asarray(cipher, dtype=_U64)
        return (c + self._pads_for(np.asarray(ids, dtype=_U64))).view(np.int64)

    def aggregate(
        self, cipher: np.ndarray, mask: np.ndarray | None, start_id: int
    ) -> AsheCiphertext:
        """Server-side SUM over (optionally masked) ciphertext rows.

        This is the hot path a Seabed worker executes per partition: a
        wrapping uint64 reduction plus ID-list construction.  No key
        material is involved.
        """
        c = np.asarray(cipher, dtype=_U64)
        if mask is None:
            total = int(np.add.reduce(c)) & MASK64 if c.size else 0
            ids = IdList.from_range(start_id, start_id + c.size)
        else:
            selected = c[mask]
            total = int(np.add.reduce(selected)) & MASK64 if selected.size else 0
            ids = IdList.from_mask(mask, offset=start_id)
        return AsheCiphertext(total, ids)

    def decrypt_sum(self, value: int, ids: IdList) -> int:
        """Decrypt an aggregated value given its ID list (signed result)."""
        return to_signed((value + self._pad_sum(ids)) & MASK64)

    def pad_for(self, ids: IdList) -> int:
        """The pad correction for an ID list (two PRF evals per run).

        Exposed so the decryption module can accumulate pads across many
        worker-encoded chunks before a single final reduction.
        """
        return self._pad_sum(ids)

    def pad_array(self, ids: np.ndarray) -> np.ndarray:
        """Per-ID pads ``F(i) - F(i-1)`` as a uint64 array (wrapping).

        The batched group-decryption path segments this array per group
        with ``np.add.reduceat`` instead of paying per-group call overhead.
        """
        return self._pads_for(np.asarray(ids, dtype=_U64))

    def pad_for_multiset(self, ids: np.ndarray) -> int:
        """Pad correction for a duplicate-bearing ID array (join results)."""
        arr = np.asarray(ids, dtype=_U64)
        if arr.size == 0:
            return 0
        return int(np.add.reduce(self._pads_for(arr))) & MASK64

    def decrypt_sum_multiset(self, value: int, ids: np.ndarray) -> int:
        """Decrypt an aggregate whose ID collection contains duplicates.

        Joins replicate build-side rows, so their identifiers form a true
        multiset (Section 3.1); each occurrence contributes its own pad,
        which is why the paper's join-heavy queries see smaller speedups.
        """
        arr = np.asarray(ids, dtype=_U64)
        if arr.size == 0:
            return to_signed(value)
        total = int(np.add.reduce(self._pads_for(arr))) & MASK64
        return to_signed((value + total) & MASK64)

    # -- internals ---------------------------------------------------------

    def _pads_for(self, arr: np.ndarray) -> np.ndarray:
        """Per-ID pads for an arbitrary uint64 ID array.

        Two strategies, chosen by density.  Scan results and group decodes
        are usually *dense* (most of a partition survives the filter), so
        one contiguous :meth:`pad_range` stream over ``[min, max]`` costs
        ``span + 1`` PRF evaluations with every adjacent pair sharing a
        boundary -- instead of two scattered evaluations per row.  The
        stream path is taken only when ``span + 1 <= 2 * n``, so it never
        evaluates the PRF more often than the scattered path would.
        """
        if arr.size == 0:
            return np.empty(0, _U64)
        lo = int(arr.min())
        hi = int(arr.max())
        span = hi - lo + 1
        if span + 1 <= 2 * arr.size:
            stream = self.pad_range(lo, span)
            return stream[arr - _U64(lo)]
        pads = self._prf.eval_many(arr) - self._prf.eval_many(arr - _ONE)
        self._bump(2 * arr.size)
        return pads

    def _pad_sum(self, ids: IdList) -> int:
        """``sum_{i in S} (F(i) - F(i-1))`` = ``sum_runs F(end) - F(start-1)``."""
        if ids.is_empty():
            return 0
        ends = self._prf.eval_many(ids.ends)
        starts = self._prf.eval_many(ids.starts - _ONE)
        self._bump(2 * ids.num_runs)
        total = int(np.add.reduce(ends - starts)) & MASK64
        return total


def check_overflow_headroom(max_abs_value: int, rows: int) -> None:
    """Raise if summing ``rows`` values bounded by ``max_abs_value`` could
    wrap ``Z_{2^64}`` ambiguously.

    ASHE sums are exact modulo ``2^64``; results are interpreted as signed
    64-bit, so the aggregate must stay within ``+-2^63``.  The planner calls
    this when it knows column bounds.
    """
    if max_abs_value < 0 or rows < 0:
        raise CryptoError("bounds must be non-negative")
    if max_abs_value * rows >= (1 << 63):
        raise DecryptionError(
            f"aggregating {rows} values of magnitude <= {max_abs_value} "
            "may overflow the signed 64-bit plaintext space"
        )
