"""Order-revealing encryption (Chenette-Lewi-Weis-Wu, FSE 2016).

Seabed uses this ORE scheme for dimensions that need range predicates
(paper Section 4.2 and Appendix A.3): it is PRF-based, works on dynamic
data (unlike CryptDB's mutable OPE tree), and its leakage is precisely the
order of any two plaintexts plus the index of the most significant bit at
which they differ.

Scheme (Appendix A.3): for an ``n``-bit message ``b_1 .. b_n`` (MSB first),

    u_i = ( F(k, (i, b_1..b_{i-1} || 0^{n-i})) + b_i ) mod 3

and the ciphertext is the trit vector ``(u_1, .., u_n)``.  To compare two
ciphertexts, find the smallest ``i`` where they differ:
``u_i == u'_i + 1 (mod 3)`` means the first message is larger.

Implementation notes:

- Trits are packed two bits each into uint64 words, with the **most
  significant** message bit in the **lowest** bit pair, so "first differing
  trit" becomes "lowest set bit pair of the XOR" -- found branch-free with
  a count-trailing-zeros built from ``bitwise_count``.
- Columns encrypt in ``n`` vectorised passes (one per bit position), since
  the PRF input for position ``i`` is just ``(i, m >> (n-i+1))``.
- Signed domains are handled by biasing with ``2^(n-1)`` before encryption,
  which is order-preserving.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.crypto.kernel import warn_deprecated_once
from repro.crypto.prf import MASK64
from repro.errors import CryptoError, KernelUnsupported

_U64 = np.uint64
_MIX_MUL_1 = 0xBF58476D1CE4E5B9
_MIX_MUL_2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15

_TRITS_PER_WORD = 32


def _mix_np(x: np.ndarray) -> np.ndarray:
    x = x ^ (x >> _U64(30))
    x = x * _U64(_MIX_MUL_1)
    x = x ^ (x >> _U64(27))
    x = x * _U64(_MIX_MUL_2)
    return x ^ (x >> _U64(31))


def _mix_int(x: int) -> int:
    x &= MASK64
    x ^= x >> 30
    x = (x * _MIX_MUL_1) & MASK64
    x ^= x >> 27
    x = (x * _MIX_MUL_2) & MASK64
    return x ^ (x >> 31)


def _ctz64(x: np.ndarray) -> np.ndarray:
    """Count trailing zeros of nonzero uint64 values, vectorised."""
    lowbit = x & (~x + _U64(1))
    return np.bitwise_count(lowbit - _U64(1)).astype(_U64)


def compare_packed_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise ORE comparison of two packed ciphertext arrays.

    Both arrays are ``(N, num_words)`` uint64; the result is int8 in
    {-1, 0, +1} per row.  Requires no key material: this is the public
    Compare algorithm, used by the server's vectorised min/max tournament
    and median quickselect.
    """
    a = np.asarray(a, dtype=_U64)
    b = np.asarray(b, dtype=_U64)
    if a.shape != b.shape or a.ndim != 2:
        raise CryptoError("compare_packed_arrays expects equal (N, words) arrays")
    n, words = a.shape
    result = np.zeros(n, dtype=np.int8)
    undecided = np.ones(n, dtype=bool)
    for w in range(words):
        if not undecided.any():
            break
        x = (a[:, w] ^ b[:, w]) & np.where(undecided, ~_U64(0), _U64(0))
        differs = x != 0
        if not differs.any():
            continue
        xs = x[differs]
        shift = (_ctz64(xs) >> _U64(1)) << _U64(1)
        ua = (a[differs, w] >> shift) & _U64(3)
        ub = (b[differs, w] >> shift) & _U64(3)
        greater = ua == (ub + _U64(1)) % _U64(3)
        result[differs] = np.where(greater, 1, -1).astype(np.int8)
        undecided &= ~differs
    return result


def argextreme_packed(cipher: np.ndarray, kind: str) -> int:
    """Index of the min/max row of a packed ORE column.

    O(log n) vectorised :func:`compare_packed_arrays` tournament passes
    instead of an O(n) per-row Python loop.  Public Compare only -- no key
    material -- so the server's MIN/MAX aggregation and the zone-map
    builder share this single implementation.
    """
    if kind not in ("min", "max"):
        raise CryptoError(f"argextreme_packed kind must be 'min' or 'max', got {kind!r}")
    cipher = np.asarray(cipher, dtype=_U64)
    if cipher.ndim != 2 or cipher.shape[0] == 0:
        raise CryptoError("argextreme_packed expects a non-empty (N, words) array")
    indices = np.arange(cipher.shape[0], dtype=np.int64)
    current = cipher
    while indices.size > 1:
        half = indices.size // 2
        a = current[:half]
        b = current[half : 2 * half]
        cmp = compare_packed_arrays(a, b)
        pick_b = cmp < 0 if kind == "max" else cmp > 0
        winner_idx = np.where(pick_b, indices[half : 2 * half], indices[:half])
        winner_ct = np.where(pick_b[:, None], b, a)
        if indices.size % 2:
            winner_idx = np.append(winner_idx, indices[-1])
            winner_ct = np.vstack([winner_ct, current[-1:]])
        indices = winner_idx
        current = winner_ct
    return int(indices[0])


class OreScheme:
    """CLWW order-revealing encryption over ``nbits``-bit integers."""

    #: Kernel-protocol ops this scheme cannot provide: CLWW ciphertexts are
    #: not invertible (comparison-only), and there is no pad stream.
    KERNEL_UNSUPPORTED = frozenset({"decrypt_column", "pad_range"})

    def __init__(self, key: bytes, nbits: int = 32, signed: bool = True,
                 backend: str = "fast"):
        if len(key) < 16:
            raise CryptoError("ORE key must be at least 16 bytes")
        if not 1 <= nbits <= 64:
            raise CryptoError(f"ORE message width must be 1..64 bits, got {nbits}")
        if backend not in ("fast", "blake2"):
            raise CryptoError(f"unknown ORE backend {backend!r}")
        self.nbits = nbits
        self.signed = signed
        self.num_words = (nbits + _TRITS_PER_WORD - 1) // _TRITS_PER_WORD
        self._backend = backend
        seed = hashlib.blake2b(key, digest_size=16, person=b"seabedORE").digest()
        self._k0 = int.from_bytes(seed[0:8], "little") | 1
        self._k1 = int.from_bytes(seed[8:16], "little")
        self._blake_key = hashlib.blake2b(key, digest_size=32, person=b"seabedOREb").digest()
        self._bias = 1 << (nbits - 1) if signed else 0

    # -- domain handling -----------------------------------------------------

    def _to_domain(self, m: int) -> int:
        shifted = int(m) + self._bias
        if not 0 <= shifted < (1 << self.nbits):
            raise CryptoError(
                f"plaintext {m} outside the {self.nbits}-bit ORE domain"
            )
        return shifted

    def _to_domain_np(self, values: np.ndarray) -> np.ndarray:
        v = np.asarray(values)
        if self.nbits == 64:
            if self.signed:
                # Adding 2^63 mod 2^64 maps signed order onto unsigned order.
                return v.astype(np.int64, copy=False).view(_U64) + _U64(1 << 63)
            return v.astype(_U64, copy=False)
        v = v.astype(np.int64, copy=False)
        shifted = v + np.int64(self._bias)
        if shifted.size and (
            int(shifted.min()) < 0 or int(shifted.max()) >= (1 << self.nbits)
        ):
            raise CryptoError("column contains values outside the ORE domain")
        return shifted.astype(_U64)

    # -- PRF ----------------------------------------------------------------

    def _prf_trit_int(self, i: int, prefix: int) -> int:
        if self._backend == "fast":
            x = _mix_int(prefix + self._k0)
            x = _mix_int(x ^ ((i * _GOLDEN + self._k1) & MASK64))
            return x % 3
        payload = i.to_bytes(1, "big") + prefix.to_bytes(8, "big")
        digest = hashlib.blake2b(payload, key=self._blake_key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % 3

    def _prf_trit_np(self, i: int, prefix: np.ndarray) -> np.ndarray:
        if self._backend == "fast":
            x = _mix_np(prefix + _U64(self._k0))
            x = _mix_np(x ^ _U64((i * _GOLDEN + self._k1) & MASK64))
            return x % _U64(3)
        out = np.empty(prefix.shape, dtype=_U64)
        for j, p in enumerate(prefix.tolist()):
            out[j] = self._prf_trit_int(i, p)
        return out

    # -- encryption ---------------------------------------------------------

    def encrypt_one(self, m: int) -> tuple[int, ...]:
        """Deprecated per-value entry point; use :meth:`encrypt_column`."""
        warn_deprecated_once(
            "OreScheme.encrypt_one",
            "OreScheme.encrypt_one(m) is deprecated; encrypt whole columns "
            "with the batch kernel OreScheme.encrypt_column(values) "
            "(query constants go through token())",
        )
        return self._encrypt_one(m)

    def _encrypt_one(self, m: int) -> tuple[int, ...]:
        """Per-row reference path (scalar PRF per bit position).

        Retained without a warning as the ground truth for the property
        tests, the kernel microbenchmark, and :meth:`token`.
        """
        value = self._to_domain(m)
        words = [0] * self.num_words
        n = self.nbits
        for i in range(1, n + 1):
            prefix = value >> (n - i + 1)
            bit = (value >> (n - i)) & 1
            trit = (self._prf_trit_int(i, prefix) + bit) % 3
            word, slot = divmod(i - 1, _TRITS_PER_WORD)
            words[word] |= trit << (2 * slot)
        return tuple(words)

    def encrypt_column(self, values: np.ndarray, start_id: int = 0) -> np.ndarray:
        """Encrypt a column; returns a ``(N, num_words)`` uint64 array.

        ``start_id`` is accepted for Kernel-protocol uniformity and
        ignored: ORE ciphertexts do not depend on row identity.
        """
        v = self._to_domain_np(values)
        out = np.zeros((v.size, self.num_words), dtype=_U64)
        n = self.nbits
        for i in range(1, n + 1):
            prefix = v >> _U64(n - i + 1)
            bit = (v >> _U64(n - i)) & _U64(1)
            trit = (self._prf_trit_np(i, prefix) + bit) % _U64(3)
            word, slot = divmod(i - 1, _TRITS_PER_WORD)
            out[:, word] |= trit << _U64(2 * slot)
        return out

    def decrypt_column(self, cipher: np.ndarray, start_id: int = 0) -> np.ndarray:
        """CLWW ciphertexts are comparison-only; decryption does not exist."""
        raise KernelUnsupported("ORE ciphertexts cannot be decrypted")

    def pad_range(self, start_id: int, count: int) -> np.ndarray:
        """ORE has no additive mask stream."""
        raise KernelUnsupported("ORE has no pad stream")

    def token(self, m: int) -> tuple[int, ...]:
        """Comparison token for a query constant (same as encryption)."""
        return self._encrypt_one(m)

    # -- comparison (public: needs no key) ------------------------------------

    @staticmethod
    def compare_words(a: tuple[int, ...], b: tuple[int, ...]) -> int:
        """Compare two packed ciphertexts: -1, 0, or +1 (a vs b)."""
        for wa, wb in zip(a, b):
            x = wa ^ wb
            if x:
                ctz = (x & -x).bit_length() - 1
                shift = (ctz // 2) * 2
                ua = (wa >> shift) & 3
                ub = (wb >> shift) & 3
                return 1 if ua == (ub + 1) % 3 else -1
        return 0

    def compare_column(self, cipher: np.ndarray, token: tuple[int, ...]) -> np.ndarray:
        """Vectorised compare of a ciphertext column against one token.

        Returns int8 array: -1 (less), 0 (equal), +1 (greater).  This runs
        on the *server*; it uses only public ciphertext material.
        """
        c = np.asarray(cipher, dtype=_U64)
        if c.ndim != 2 or c.shape[1] != self.num_words:
            raise CryptoError("ciphertext array has the wrong shape")
        result = np.zeros(c.shape[0], dtype=np.int8)
        undecided = np.ones(c.shape[0], dtype=bool)
        for w in range(self.num_words):
            if not undecided.any():
                break
            col = c[:, w]
            tok = _U64(token[w])
            x = (col ^ tok) & np.where(undecided, ~_U64(0), _U64(0))
            differs = x != 0
            if not differs.any():
                continue
            xs = x[differs]
            shift = (_ctz64(xs) >> _U64(1)) << _U64(1)
            u = (col[differs] >> shift) & _U64(3)
            ut = (tok >> shift) & _U64(3)
            greater = u == (ut + _U64(1)) % _U64(3)
            result[differs] = np.where(greater, 1, -1).astype(np.int8)
            undecided &= ~differs
        return result

    # -- predicate helpers ------------------------------------------------------

    def filter_column(self, cipher: np.ndarray, op: str, token: tuple[int, ...]) -> np.ndarray:
        """Boolean mask for ``column <op> constant`` on the server."""
        cmp = self.compare_column(cipher, token)
        if op == "<":
            return cmp < 0
        if op == "<=":
            return cmp <= 0
        if op == ">":
            return cmp > 0
        if op == ">=":
            return cmp >= 0
        if op == "=":
            return cmp == 0
        if op == "!=":
            return cmp != 0
        raise CryptoError(f"unsupported ORE comparison operator {op!r}")

    def argmax_column(self, cipher: np.ndarray) -> int:
        """Index of the row with the largest plaintext (server-side scan)."""
        if cipher.shape[0] == 0:
            raise CryptoError("argmax of an empty ORE column")
        return argextreme_packed(cipher, "max")

    def argmin_column(self, cipher: np.ndarray) -> int:
        if cipher.shape[0] == 0:
            raise CryptoError("argmin of an empty ORE column")
        return argextreme_packed(cipher, "min")

    def first_diff_index(self, a: tuple[int, ...], b: tuple[int, ...]) -> int | None:
        """The leakage function: 1-based index of the first differing bit.

        Returns ``None`` when the underlying plaintexts are equal.  Exposed
        so tests can verify the scheme leaks exactly ``inddiff`` and order.
        """
        for w, (wa, wb) in enumerate(zip(a, b)):
            x = wa ^ wb
            if x:
                ctz = (x & -x).bit_length() - 1
                return w * _TRITS_PER_WORD + ctz // 2 + 1
        return None
