"""The Paillier cryptosystem: the baseline Seabed is measured against.

CryptDB and Monomi perform encrypted aggregation with Paillier's additively
homomorphic public-key scheme (paper Sections 2.1, 6).  We implement it in
full so every benchmark can run the three-way comparison the paper reports
(NoEnc / Seabed / Paillier):

- key generation with Miller-Rabin safe random primes,
- ``Enc(m) = (1 + m n) r^n  mod n^2`` (using the standard ``g = n + 1``),
- homomorphic addition = ciphertext multiplication mod ``n^2``,
- decryption via ``L(c^lambda mod n^2) mu mod n``, with an optional
  CRT-accelerated path (~4x) that mirrors production implementations.

Ciphertexts are plain Python ints (arbitrary precision); a 1024-bit modulus
gives the 2048-bit ciphertexts used in the paper's storage table.
"""

from __future__ import annotations

import math
import secrets
from dataclasses import dataclass
from random import Random

import numpy as np

from repro.errors import CryptoError, KernelUnsupported

_SMALL_PRIMES = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67]


def _is_probable_prime(n: int, rng: Random, rounds: int = 40) -> bool:
    if n < 2:
        return False
    if n == 2:
        return True
    if n % 2 == 0:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass
class PaillierKeyPair:
    """Public (n) and private (p, q, lambda, mu) Paillier key material."""

    n: int
    p: int
    q: int

    @classmethod
    def generate(cls, bits: int = 1024, seed: int | None = None) -> "PaillierKeyPair":
        """Generate a keypair with an ``bits``-bit modulus.

        ``seed`` makes tests reproducible; production callers omit it and
        get OS randomness.
        """
        rng = Random(seed) if seed is not None else Random(secrets.randbits(256))
        half = bits // 2
        while True:
            p = _generate_prime(half, rng)
            q = _generate_prime(bits - half, rng)
            if p != q and math.gcd(p * q, (p - 1) * (q - 1)) == 1:
                n = p * q
                if n.bit_length() == bits:
                    return cls(n=n, p=p, q=q)

    @property
    def ciphertext_bits(self) -> int:
        return 2 * self.n.bit_length()


class PaillierScheme:
    """Encrypt / add / decrypt with one keypair.

    Randomness for encryption blinding comes from a dedicated RNG;  pass
    ``seed`` for reproducible ciphertexts in tests.
    """

    #: Kernel-protocol ops this scheme cannot provide: Paillier is
    #: semantically secure (no comparison) and has no pad stream.
    KERNEL_UNSUPPORTED = frozenset({"compare_column", "pad_range"})

    def __init__(self, keys: PaillierKeyPair, seed: int | None = None,
                 blinding_pool: int | None = None):
        """``blinding_pool`` precomputes that many ``r^n mod n^2`` blinding
        factors and samples encryptions from the pool.  This reuses
        randomness and is **not semantically secure**; it exists so
        benchmark *setup* (bulk-encrypting baseline datasets) is tractable
        while ciphertext sizes and every server-side cost stay identical.
        Never enable it for real data.
        """
        self._keys = keys
        self._rng = Random(seed) if seed is not None else Random(secrets.randbits(256))
        n = keys.n
        self._n = n
        self._n2 = n * n
        lam = math.lcm(keys.p - 1, keys.q - 1)
        self._lam = lam
        # mu = L(g^lam mod n^2)^-1 with g = n+1:  g^lam = 1 + lam*n (mod n^2)
        self._mu = pow(lam % n, -1, n)
        # CRT precomputation
        self._p2 = keys.p * keys.p
        self._q2 = keys.q * keys.q
        self._hp = pow(self._l_func(pow(n + 1, keys.p - 1, self._p2), keys.p), -1, keys.p)
        self._hq = pow(self._l_func(pow(n + 1, keys.q - 1, self._q2), keys.q), -1, keys.q)
        self._q_inv_p = pow(keys.q, -1, keys.p)
        self._blinding: list[int] | None = None
        if blinding_pool is not None:
            if blinding_pool < 1:
                raise CryptoError("blinding pool must be positive")
            self._blinding = [
                pow(self._rng.randrange(1, n), n, self._n2)
                for _ in range(blinding_pool)
            ]

    @property
    def n(self) -> int:
        return self._n

    @staticmethod
    def _l_func(x: int, n: int) -> int:
        return (x - 1) // n

    # -- core operations ----------------------------------------------------

    def encrypt(self, m: int) -> int:
        """Encrypt a (possibly negative) integer; |m| must be << n/2."""
        m_mod = m % self._n
        if self._blinding is not None:
            blind = self._blinding[self._rng.randrange(len(self._blinding))]
        else:
            r = self._rng.randrange(1, self._n)  # gcd(r, n) = 1 w.h.p.
            blind = pow(r, self._n, self._n2)
        return ((1 + m_mod * self._n) * blind) % self._n2

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition: multiply ciphertexts mod n^2."""
        return (c1 * c2) % self._n2

    def add_plain(self, c: int, m: int) -> int:
        return (c * (1 + (m % self._n) * self._n)) % self._n2

    def mul_plain(self, c: int, k: int) -> int:
        """Scalar multiplication: Enc(m)^k = Enc(k*m)."""
        return pow(c, k % self._n, self._n2)

    def decrypt(self, c: int) -> int:
        """Standard decryption: L(c^lambda mod n^2) * mu mod n, signed."""
        m = (self._l_func(pow(c, self._lam, self._n2), self._n) * self._mu) % self._n
        return m - self._n if m > self._n // 2 else m

    def decrypt_crt(self, c: int) -> int:
        """CRT-accelerated decryption (identical output, ~4x faster)."""
        p, q = self._keys.p, self._keys.q
        mp = (self._l_func(pow(c % self._p2, p - 1, self._p2), p) * self._hp) % p
        mq = (self._l_func(pow(c % self._q2, q - 1, self._q2), q) * self._hq) % q
        m = (mq + q * (((mp - mq) * self._q_inv_p) % p)) % self._n
        return m - self._n if m > self._n // 2 else m

    # -- column interface (object arrays of Python ints) ------------------------

    def encrypt_column(self, values: np.ndarray, start_id: int = 0) -> np.ndarray:
        """Encrypt each element; returns a dtype=object array of big ints.

        ``start_id`` is accepted for Kernel-protocol uniformity and
        ignored.  Paillier ciphertexts are arbitrary-precision ints, so
        the batch path is a loop -- exactly the per-row cost the paper's
        baseline measurements charge Paillier for.
        """
        out = np.empty(len(values), dtype=object)
        for j, m in enumerate(np.asarray(values).tolist()):
            out[j] = self.encrypt(int(m))
        return out

    def decrypt_column(self, cipher: np.ndarray, start_id: int = 0) -> np.ndarray:
        """Decrypt a dtype=object ciphertext column to int64 plaintexts.

        Uses the CRT-accelerated path per element (~4x over the standard
        decryption, same output).
        """
        c = np.asarray(cipher, dtype=object)
        out = np.empty(c.size, dtype=np.int64)
        for j, ct in enumerate(c.tolist()):
            out[j] = self.decrypt_crt(int(ct))
        return out

    def compare_column(self, cipher: np.ndarray, token) -> np.ndarray:
        """Paillier is semantically secure; no server-side comparison."""
        raise KernelUnsupported("Paillier ciphertexts do not support comparison")

    def pad_range(self, start_id: int, count: int) -> np.ndarray:
        """Paillier has no additive mask stream."""
        raise KernelUnsupported("Paillier has no pad stream")

    def aggregate(self, cipher: np.ndarray, mask: np.ndarray | None = None) -> int:
        """Server-side SUM: the big-int product of selected ciphertexts."""
        selected = cipher if mask is None else cipher[mask]
        total = 1
        n2 = self._n2
        for c in selected.tolist():
            total = (total * c) % n2
        return total

    def zero_ciphertext(self) -> int:
        """An encryption of zero (the aggregation identity with blinding)."""
        return self.encrypt(0)
