"""The batch crypto-kernel protocol: array-in / array-out primitives.

Seabed's performance story (Table 1, Figures 6-7) only holds when the
crypto primitives are *batch* operations over whole columns -- the same
lesson the "Computing on Masked Data" line of work draws for masked-data
analytics.  Every scheme in this package therefore implements one uniform
:class:`Kernel` protocol:

- ``encrypt_column(values, start_id=0)`` -- encrypt a whole column.
  ``start_id`` is the first row identifier; schemes whose ciphertexts do
  not depend on row identity (DET, ORE, Paillier, plain) accept and
  ignore it.
- ``decrypt_column(cipher, start_id=0)`` -- the inverse.
- ``compare_column(cipher, token)`` -- server-side predicate evaluation
  of a whole ciphertext column against one query token, with no key
  material.
- ``pad_range(start_id, count)`` -- the per-row pad stream for a
  contiguous identifier range (ASHE's telescoping masks; zeros for
  plaintext).

Operations that are cryptographically meaningless for a scheme (ORE
cannot be decrypted, Paillier reveals no order) raise
:class:`~repro.errors.KernelUnsupported`; each scheme declares them in
``KERNEL_UNSUPPORTED`` so capability checks need no trial calls.

The historical per-value entry points (``encrypt_one`` / ``decrypt_one``
/ ``encrypt(m, i)``) survive as warn-once deprecation shims built on
:func:`warn_deprecated_once` -- the same pattern as the
``SeabedClient.server`` shim -- and double as the *reference path* the
property tests and ``benchmarks/bench_kernels.py`` measure the batch
kernels against.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import CryptoError, KernelUnsupported
from repro.obs import metrics as _obs_metrics

_U64 = np.uint64

#: The four batch-kernel operations, in protocol order.
KERNEL_OPS = ("encrypt_column", "decrypt_column", "compare_column", "pad_range")


@runtime_checkable
class Kernel(Protocol):
    """Structural type for a batch crypto kernel (see module docstring)."""

    def encrypt_column(self, values: np.ndarray, start_id: int = 0) -> np.ndarray:
        ...

    def decrypt_column(self, cipher: np.ndarray, start_id: int = 0) -> np.ndarray:
        ...

    def compare_column(self, cipher: np.ndarray, token) -> np.ndarray:
        ...

    def pad_range(self, start_id: int, count: int) -> np.ndarray:
        ...


def kernel_ops(kernel: object) -> dict[str, bool]:
    """Which of the four kernel ops ``kernel`` actually supports.

    Uses the scheme's declared ``KERNEL_UNSUPPORTED`` set -- no trial
    calls, so probing a capability never costs an exception.
    """
    unsupported = frozenset(getattr(kernel, "KERNEL_UNSUPPORTED", ()))
    return {op: op not in unsupported for op in KERNEL_OPS}


def validate_kernel(kernel: object) -> None:
    """Raise :class:`CryptoError` unless ``kernel`` satisfies the protocol."""
    if not isinstance(kernel, Kernel):
        missing = [op for op in KERNEL_OPS if not callable(getattr(kernel, op, None))]
        raise CryptoError(
            f"{type(kernel).__name__} does not implement the Kernel protocol "
            f"(missing: {', '.join(missing) or 'nothing?'})"
        )


# -- warn-once deprecation shims --------------------------------------------

_WARNED: set[str] = set()
_WARNED_LOCK = threading.Lock()


def warn_deprecated_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` the first time ``key`` is seen.

    Per-value crypto entry points sit on hot paths; warning on every call
    would flood the log, so each deprecated entry point warns exactly once
    per process (mirroring the ``SeabedClient.server`` shim).
    """
    with _WARNED_LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which deprecation keys have fired (test isolation helper)."""
    with _WARNED_LOCK:
        _WARNED.clear()


# -- kernel instrumentation --------------------------------------------------

#: ns/op buckets for per-scheme kernel timings: 1 ns .. 100 us per value.
KERNEL_NS_BUCKETS = (
    1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5,
)


def observe_kernel_op(scheme: str, op: str, seconds: float, values: int) -> None:
    """Fold one batch kernel call into the metrics registry.

    Records a per-scheme/per-op ns-per-value histogram
    (``seabed_kernel_ns_per_op``) and a processed-value counter
    (``seabed_kernel_values_total``) -- the live counterpart of the
    Table 1 numbers ``benchmarks/bench_kernels.py`` measures offline.
    """
    if not _obs_metrics.enabled() or values <= 0:
        return
    reg = _obs_metrics.get_registry()
    reg.histogram(
        "seabed_kernel_ns_per_op",
        "Batch crypto-kernel cost per value, by scheme and operation.",
        labelnames=("scheme", "op"),
        buckets=KERNEL_NS_BUCKETS,
    ).observe(seconds * 1e9 / values, scheme=scheme, op=op)
    reg.counter(
        "seabed_kernel_values_total",
        "Values processed by batch crypto kernels.",
        labelnames=("scheme", "op"),
    ).inc(float(values), scheme=scheme, op=op)


class InstrumentedKernel:
    """Transparent timing wrapper around any :class:`Kernel`.

    Times the four batch operations into :func:`observe_kernel_op` and
    forwards everything else (``token_for``, ``KERNEL_UNSUPPORTED``,
    scheme-specific helpers) to the wrapped instance, so callers that
    duck-type against scheme attributes keep working unchanged.
    """

    __slots__ = ("_kernel", "_scheme")

    def __init__(self, kernel, scheme: str) -> None:
        self._kernel = kernel
        self._scheme = scheme

    @property
    def wrapped(self):
        return self._kernel

    def _timed(self, op: str, fn, values: int, *args, **kwargs):
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        observe_kernel_op(self._scheme, op, time.perf_counter() - t0, values)
        return out

    def encrypt_column(self, values, start_id: int = 0):
        n = len(values) if hasattr(values, "__len__") else 0
        return self._timed(
            "encrypt_column", self._kernel.encrypt_column, n, values, start_id
        )

    def decrypt_column(self, cipher, start_id: int = 0):
        n = len(cipher) if hasattr(cipher, "__len__") else 0
        return self._timed(
            "decrypt_column", self._kernel.decrypt_column, n, cipher, start_id
        )

    def compare_column(self, cipher, token):
        n = len(cipher) if hasattr(cipher, "__len__") else 0
        return self._timed(
            "compare_column", self._kernel.compare_column, n, cipher, token
        )

    def pad_range(self, start_id: int, count: int):
        return self._timed(
            "pad_range", self._kernel.pad_range, count, start_id, count
        )

    def __getattr__(self, name: str):
        return getattr(self._kernel, name)

    def __reduce__(self):
        # Explicit so pickling (process backends, shard workers) never
        # routes through __getattr__ forwarding.
        return (InstrumentedKernel, (self._kernel, self._scheme))

    def __repr__(self) -> str:
        return f"InstrumentedKernel({self._scheme}, {self._kernel!r})"


# -- the trivial kernel ------------------------------------------------------


class PlainKernel:
    """The identity "scheme": plaintext columns behind the Kernel protocol.

    The NoEnc baseline flows through the same batch interface as the
    encrypted schemes, so the execution tier has exactly one calling
    convention regardless of mode.
    """

    KERNEL_UNSUPPORTED: frozenset[str] = frozenset()

    def encrypt_column(self, values: np.ndarray, start_id: int = 0) -> np.ndarray:
        v = np.asarray(values)
        if v.ndim != 1:
            raise CryptoError("encrypt_column expects a 1-D array")
        return v.astype(np.int64, copy=False)

    def decrypt_column(self, cipher: np.ndarray, start_id: int = 0) -> np.ndarray:
        c = np.asarray(cipher)
        if c.ndim != 1:
            raise CryptoError("decrypt_column expects a 1-D array")
        return c.astype(np.int64, copy=False)

    def compare_column(self, cipher: np.ndarray, token) -> np.ndarray:
        """Sign of ``cipher - token`` as int8 (-1 / 0 / +1) per row."""
        c = np.asarray(cipher, dtype=np.int64)
        t = np.int64(int(token))
        return np.sign(c - t).astype(np.int8)

    def pad_range(self, start_id: int, count: int) -> np.ndarray:
        """Plaintext needs no masking: the pad stream is all zeros."""
        if count < 0:
            raise CryptoError(f"negative pad range count: {count}")
        return np.zeros(count, dtype=_U64)


__all__ = [
    "KERNEL_OPS",
    "InstrumentedKernel",
    "Kernel",
    "KernelUnsupported",
    "PlainKernel",
    "kernel_ops",
    "observe_kernel_op",
    "reset_deprecation_warnings",
    "validate_kernel",
    "warn_deprecated_once",
]
