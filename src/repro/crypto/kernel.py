"""The batch crypto-kernel protocol: array-in / array-out primitives.

Seabed's performance story (Table 1, Figures 6-7) only holds when the
crypto primitives are *batch* operations over whole columns -- the same
lesson the "Computing on Masked Data" line of work draws for masked-data
analytics.  Every scheme in this package therefore implements one uniform
:class:`Kernel` protocol:

- ``encrypt_column(values, start_id=0)`` -- encrypt a whole column.
  ``start_id`` is the first row identifier; schemes whose ciphertexts do
  not depend on row identity (DET, ORE, Paillier, plain) accept and
  ignore it.
- ``decrypt_column(cipher, start_id=0)`` -- the inverse.
- ``compare_column(cipher, token)`` -- server-side predicate evaluation
  of a whole ciphertext column against one query token, with no key
  material.
- ``pad_range(start_id, count)`` -- the per-row pad stream for a
  contiguous identifier range (ASHE's telescoping masks; zeros for
  plaintext).

Operations that are cryptographically meaningless for a scheme (ORE
cannot be decrypted, Paillier reveals no order) raise
:class:`~repro.errors.KernelUnsupported`; each scheme declares them in
``KERNEL_UNSUPPORTED`` so capability checks need no trial calls.

The historical per-value entry points (``encrypt_one`` / ``decrypt_one``
/ ``encrypt(m, i)``) survive as warn-once deprecation shims built on
:func:`warn_deprecated_once` -- the same pattern as the
``SeabedClient.server`` shim -- and double as the *reference path* the
property tests and ``benchmarks/bench_kernels.py`` measure the batch
kernels against.
"""

from __future__ import annotations

import threading
import warnings
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import CryptoError, KernelUnsupported

_U64 = np.uint64

#: The four batch-kernel operations, in protocol order.
KERNEL_OPS = ("encrypt_column", "decrypt_column", "compare_column", "pad_range")


@runtime_checkable
class Kernel(Protocol):
    """Structural type for a batch crypto kernel (see module docstring)."""

    def encrypt_column(self, values: np.ndarray, start_id: int = 0) -> np.ndarray:
        ...

    def decrypt_column(self, cipher: np.ndarray, start_id: int = 0) -> np.ndarray:
        ...

    def compare_column(self, cipher: np.ndarray, token) -> np.ndarray:
        ...

    def pad_range(self, start_id: int, count: int) -> np.ndarray:
        ...


def kernel_ops(kernel: object) -> dict[str, bool]:
    """Which of the four kernel ops ``kernel`` actually supports.

    Uses the scheme's declared ``KERNEL_UNSUPPORTED`` set -- no trial
    calls, so probing a capability never costs an exception.
    """
    unsupported = frozenset(getattr(kernel, "KERNEL_UNSUPPORTED", ()))
    return {op: op not in unsupported for op in KERNEL_OPS}


def validate_kernel(kernel: object) -> None:
    """Raise :class:`CryptoError` unless ``kernel`` satisfies the protocol."""
    if not isinstance(kernel, Kernel):
        missing = [op for op in KERNEL_OPS if not callable(getattr(kernel, op, None))]
        raise CryptoError(
            f"{type(kernel).__name__} does not implement the Kernel protocol "
            f"(missing: {', '.join(missing) or 'nothing?'})"
        )


# -- warn-once deprecation shims --------------------------------------------

_WARNED: set[str] = set()
_WARNED_LOCK = threading.Lock()


def warn_deprecated_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` the first time ``key`` is seen.

    Per-value crypto entry points sit on hot paths; warning on every call
    would flood the log, so each deprecated entry point warns exactly once
    per process (mirroring the ``SeabedClient.server`` shim).
    """
    with _WARNED_LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which deprecation keys have fired (test isolation helper)."""
    with _WARNED_LOCK:
        _WARNED.clear()


# -- the trivial kernel ------------------------------------------------------


class PlainKernel:
    """The identity "scheme": plaintext columns behind the Kernel protocol.

    The NoEnc baseline flows through the same batch interface as the
    encrypted schemes, so the execution tier has exactly one calling
    convention regardless of mode.
    """

    KERNEL_UNSUPPORTED: frozenset[str] = frozenset()

    def encrypt_column(self, values: np.ndarray, start_id: int = 0) -> np.ndarray:
        v = np.asarray(values)
        if v.ndim != 1:
            raise CryptoError("encrypt_column expects a 1-D array")
        return v.astype(np.int64, copy=False)

    def decrypt_column(self, cipher: np.ndarray, start_id: int = 0) -> np.ndarray:
        c = np.asarray(cipher)
        if c.ndim != 1:
            raise CryptoError("decrypt_column expects a 1-D array")
        return c.astype(np.int64, copy=False)

    def compare_column(self, cipher: np.ndarray, token) -> np.ndarray:
        """Sign of ``cipher - token`` as int8 (-1 / 0 / +1) per row."""
        c = np.asarray(cipher, dtype=np.int64)
        t = np.int64(int(token))
        return np.sign(c - t).astype(np.int8)

    def pad_range(self, start_id: int, count: int) -> np.ndarray:
        """Plaintext needs no masking: the pad stream is all zeros."""
        if count < 0:
            raise CryptoError(f"negative pad range count: {count}")
        return np.zeros(count, dtype=_U64)


__all__ = [
    "KERNEL_OPS",
    "Kernel",
    "KernelUnsupported",
    "PlainKernel",
    "kernel_ops",
    "reset_deprecation_warnings",
    "validate_kernel",
    "warn_deprecated_once",
]
