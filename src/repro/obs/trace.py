"""Lightweight distributed tracing for the Seabed reproduction.

One client query crosses up to three kinds of OS process -- the client,
the asyncio service, and the fork+pipe shard workers -- and the paper's
whole argument is about *where* the time goes (Figures 6-10).  This
module gives every layer the same primitive: a :class:`Span` with a
monotonic start/end, free-form attributes, and a parent id, held in an
ambient ``contextvars`` slot so nested layers parent themselves without
any plumbing.

Cross-process stitching works by value, not by magic:

- :func:`current_context` exports the ambient ``{"trace_id", "span_id"}``
  pair; the wire codec threads it through the request envelope and the
  shard RPC threads it through a reserved ``__trace__`` kwarg.
- :func:`continue_context` installs a received context as the ambient
  parent on the remote side; a peer that never sends one (version skew)
  simply produces a local-only trace -- no error, typed or otherwise.
- Remote spans ride back on the reply (``spans`` envelope key / a fourth
  reply-tuple element) and are :meth:`Tracer.ingest`-ed into the caller's
  tracer, so the client ends up holding one stitched trace.

All spans use ``time.perf_counter()`` -- CLOCK_MONOTONIC on Linux, which
is shared across processes on the same host, so child-process spans nest
correctly inside their parents without clock translation.

Exports: :func:`chrome_trace` renders Chrome trace-event JSON (load the
file at ``ui.perfetto.dev``); :func:`render_tree` renders an indented
plain-text tree.

Security: span attributes must only ever carry sizes, counts, timings,
and operator/table names -- never plaintexts, key material, or auth
tokens.  ``repro.attacks.telemetry.audit_telemetry`` enforces this.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace",
    "continue_context",
    "current_context",
    "enabled",
    "get_tracer",
    "new_trace_id",
    "process_label",
    "record_span",
    "render_tree",
    "set_enabled",
    "set_process_label",
    "span",
]

#: Default retention: the tracer keeps this many most-recent spans.
DEFAULT_CAPACITY = 4096

_ATTR_TYPES = (str, int, float, bool, type(None))


@dataclass
class Span:
    """One timed operation inside a trace.

    ``start``/``end`` are ``time.perf_counter()`` readings; ``pid`` and
    ``process`` identify the producing OS process so exporters can group
    spans per process even after they are stitched into one trace.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start: float = 0.0
    end: float = 0.0
    attributes: dict = field(default_factory=dict)
    process: str = ""
    pid: int = 0

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, **attrs) -> None:
        """Attach attributes (sizes, counts, timings -- never secrets)."""
        self.attributes.update(attrs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "process": self.process,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span from a wire dict; raises on malformed input."""
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            start=float(data.get("start", 0.0)),
            end=float(data.get("end", 0.0)),
            attributes=dict(data.get("attributes") or {}),
            process=str(data.get("process", "")),
            pid=int(data.get("pid", 0)),
        )


class Tracer:
    """A bounded, thread-safe buffer of finished spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)

    def record(self, sp: Span) -> None:
        with self._lock:
            self._spans.append(sp)

    def ingest(self, dicts: Iterable[dict]) -> int:
        """Absorb remote span dicts; malformed entries are skipped, not
        raised -- a skewed peer must never break the caller."""
        absorbed = 0
        for d in dicts or ():
            try:
                sp = Span.from_dict(d)
            except Exception:
                continue
            self.record(sp)
            absorbed += 1
        return absorbed

    def spans(self, trace_id: str | None = None, limit: int | None = None) -> list[Span]:
        with self._lock:
            out = [s for s in self._spans if trace_id is None or s.trace_id == trace_id]
        if limit is not None:
            out = out[-int(limit):]
        return out

    def take(self, trace_id: str) -> list[Span]:
        """Drain and return every span belonging to ``trace_id`` --
        the piggyback path that ships remote spans home exactly once."""
        with self._lock:
            keep, out = deque(maxlen=self._spans.maxlen), []
            for s in self._spans:
                (out if s.trace_id == trace_id else keep).append(s)
            self._spans = keep
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_TRACER = Tracer()
_ENABLED = True
_PROCESS_LABEL: str | None = None
_IDS = itertools.count(1)
#: Ambient (trace_id, span_id) the next child span parents itself under.
_CURRENT: ContextVar[tuple[str, str] | None] = ContextVar("repro_obs_span", default=None)


def get_tracer() -> Tracer:
    return _TRACER


def set_enabled(flag: bool) -> None:
    """Globally enable/disable span recording (the overhead kill switch)."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    return _ENABLED


def set_process_label(label: str) -> None:
    """Name this OS process in exported traces (e.g. ``shard-node-2``)."""
    global _PROCESS_LABEL
    _PROCESS_LABEL = str(label)


def process_label() -> str:
    return _PROCESS_LABEL or f"pid-{os.getpid()}"


def new_trace_id() -> str:
    return os.urandom(8).hex()


def _new_span_id() -> str:
    # pid-qualified so ids stay unique after fork without coordination.
    return f"{os.getpid():x}.{next(_IDS)}"


def current_context() -> dict | None:
    """The ambient span as a wire-safe ``{"trace_id", "span_id"}`` dict,
    or ``None`` when no span is open (then nothing is propagated)."""
    cur = _CURRENT.get()
    if cur is None:
        return None
    return {"trace_id": cur[0], "span_id": cur[1]}


@contextmanager
def continue_context(ctx: dict | None) -> Iterator[None]:
    """Adopt a received trace context as the ambient parent.

    Tolerates ``None`` and malformed payloads by design: a version-skewed
    peer that sends nothing usable gets local-only spans, never an error.
    """
    token = None
    if isinstance(ctx, dict):
        trace_id, span_id = ctx.get("trace_id"), ctx.get("span_id")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            token = _CURRENT.set((trace_id, span_id))
    try:
        yield
    finally:
        if token is not None:
            _CURRENT.reset(token)


@contextmanager
def span(name: str, **attributes) -> Iterator[Span | None]:
    """Open a child of the ambient span (or a new root) around a block.

    Yields the in-progress :class:`Span` so callers may :meth:`Span.set`
    attributes; yields ``None`` when tracing is disabled (callers must
    guard with ``if sp is not None``).  The span is recorded on exit,
    exceptions included.
    """
    if not _ENABLED:
        yield None
        return
    parent = _CURRENT.get()
    trace_id = parent[0] if parent else new_trace_id()
    sp = Span(
        name=name,
        trace_id=trace_id,
        span_id=_new_span_id(),
        parent_id=parent[1] if parent else None,
        attributes={k: v for k, v in attributes.items() if isinstance(v, _ATTR_TYPES)},
        process=process_label(),
        pid=os.getpid(),
    )
    token = _CURRENT.set((trace_id, sp.span_id))
    sp.start = time.perf_counter()
    try:
        yield sp
    except BaseException:
        sp.attributes.setdefault("error", True)
        raise
    finally:
        sp.end = time.perf_counter()
        _CURRENT.reset(token)
        _TRACER.record(sp)


def record_span(name: str, start: float, end: float, **attributes) -> Span | None:
    """Record an already-measured interval as a child of the ambient span.

    For code that measures with its own ``perf_counter()`` pairs (stage
    timers, bind/decrypt accounting) rather than wrapping a block.
    """
    if not _ENABLED:
        return None
    parent = _CURRENT.get()
    trace_id = parent[0] if parent else new_trace_id()
    sp = Span(
        name=name,
        trace_id=trace_id,
        span_id=_new_span_id(),
        parent_id=parent[1] if parent else None,
        start=float(start),
        end=float(end),
        attributes={k: v for k, v in attributes.items() if isinstance(v, _ATTR_TYPES)},
        process=process_label(),
        pid=os.getpid(),
    )
    _TRACER.record(sp)
    return sp


# -- exporters ---------------------------------------------------------------


def chrome_trace(spans: Iterable[Span]) -> dict:
    """Render spans as Chrome trace-event JSON (Perfetto-loadable).

    Complete ("X") events with microsecond timestamps, one trace-viewer
    process row per producing OS process.
    """
    spans = list(spans)
    events: list[dict] = []
    seen_pids: dict[int, str] = {}
    for s in spans:
        if s.pid not in seen_pids:
            seen_pids[s.pid] = s.process or f"pid-{s.pid}"
            events.append({
                "ph": "M", "name": "process_name", "pid": s.pid, "tid": 0,
                "args": {"name": seen_pids[s.pid]},
            })
        events.append({
            "ph": "X",
            "name": s.name,
            "pid": s.pid,
            "tid": 0,
            "ts": s.start * 1e6,
            "dur": s.duration * 1e6,
            "args": dict(s.attributes) | {
                "trace_id": s.trace_id,
                "span_id": s.span_id,
                "parent_id": s.parent_id or "",
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_tree(spans: Iterable[Span]) -> str:
    """Indented plain-text dump of one or more traces, parentage-ordered."""
    spans = sorted(spans, key=lambda s: s.start)
    by_parent: dict[str | None, list[Span]] = {}
    ids = {s.span_id for s in spans}
    for s in spans:
        # A parent recorded by a peer we never heard back from renders
        # the child as a root rather than dropping it.
        key = s.parent_id if s.parent_id in ids else None
        by_parent.setdefault(key, []).append(s)

    lines: list[str] = []

    def walk(parent: str | None, depth: int) -> None:
        for s in by_parent.get(parent, ()):
            attrs = " ".join(f"{k}={v}" for k, v in sorted(s.attributes.items()))
            lines.append(
                f"{'  ' * depth}{s.name}  {s.duration * 1e3:.3f} ms"
                f"  [{s.process or s.pid}]" + (f"  {attrs}" if attrs else "")
            )
            walk(s.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)
