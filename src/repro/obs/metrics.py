"""A unified metrics registry: counters, gauges, histograms with labels.

Pure stdlib (no numpy) so leaf modules like :mod:`repro.ops` can import
it without dragging in the heavy dependency tree.  One process-wide
:class:`MetricsRegistry` absorbs

- the classic ``OPS`` pipeline counters (``seabed_client_ops_total``),
- every executed :class:`~repro.engine.metrics.JobMetrics` via
  :func:`observe_job` (per-phase latency histograms, pruning/shard/
  failover counters),
- crypto-kernel timings via ``repro.crypto.kernel.observe_kernel_op``
  (per-scheme, per-op seconds histograms and value counters),
- service-layer accounting (request latency per op/tenant, backpressure
  rejections, slow queries).

Two export formats: :meth:`MetricsRegistry.prometheus` (text exposition
suitable for a scrape endpoint -- served by the ``metrics`` RPC op) and
:meth:`MetricsRegistry.snapshot` (JSON-friendly nested dict).

Labels are plain ``key=value`` strings; values must never contain
plaintexts, keys, or tokens (``repro.attacks.telemetry`` audits this).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "get_registry",
    "observe_job",
    "set_enabled",
]

#: Default latency buckets (seconds): 50us .. 30s, roughly x3 apart.
DEFAULT_BUCKETS = (
    5e-5, 2e-4, 5e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
)

_ENABLED = True


def set_enabled(flag: bool) -> None:
    """Globally enable/disable metric updates (the overhead kill switch)."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    return _ENABLED


def _label_key(labelnames: tuple[str, ...], labels: dict) -> tuple[str, ...]:
    return tuple(str(labels.get(name, "")) for name in labelnames)


class _Metric:
    """Shared shape: a name, help text, declared label names, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple[str, ...]:
        return _label_key(self.labelnames, labels)


class Counter(_Metric):
    """Monotonic counter, optionally per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())


class Gauge(_Metric):
    """Last-write-wins instantaneous value, optionally per labels."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not _ENABLED:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)


class Histogram(_Metric):
    """Cumulative-bucket histogram in the Prometheus style."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        # per label-key: [per-bucket counts..., +Inf count], sum
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}

    def observe(self, value: float, **labels) -> None:
        if not _ENABLED:
            return
        value = float(value)
        idx = bisect_left(self.buckets, value)
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            counts[idx] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels) -> int:
        with self._lock:
            return sum(self._counts.get(self._key(labels), ()))

    def sum(self, **labels) -> float:
        with self._lock:
            return self._sums.get(self._key(labels), 0.0)


def _fmt_value(v: float) -> str:
    return repr(int(v)) if float(v).is_integer() else repr(float(v))


def _fmt_labels(labelnames: tuple[str, ...], key: tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{name}="{value}"'
        for name, value in zip(labelnames, key)
        if value != ""
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Named metrics, created once and shared process-wide.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the kind and label names; later calls must agree or raise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    labelnames and tuple(labelnames) != existing.labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def clear(self) -> None:
        """Drop every registered metric (test isolation helper)."""
        with self._lock:
            self._metrics.clear()

    # -- exports -------------------------------------------------------------

    def prometheus(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: list[str] = []
        for m in self.metrics():
            if m.help:
                lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            if isinstance(m, (Counter, Gauge)):
                with m._lock:
                    items = sorted(m._values.items())
                if not items and not m.labelnames:
                    items = [((), 0.0)]
                for key, value in items:
                    lines.append(
                        f"{m.name}{_fmt_labels(m.labelnames, key)} {_fmt_value(value)}"
                    )
            elif isinstance(m, Histogram):
                with m._lock:
                    items = sorted(m._counts.items())
                    sums = dict(m._sums)
                for key, counts in items:
                    cumulative = 0
                    for bucket, n in zip(m.buckets, counts):
                        cumulative += n
                        le = f'le="{_fmt_value(bucket)}"'
                        lines.append(
                            f"{m.name}_bucket{_fmt_labels(m.labelnames, key, le)} "
                            f"{cumulative}"
                        )
                    cumulative += counts[-1]
                    inf = 'le="+Inf"'
                    lines.append(
                        f"{m.name}_bucket{_fmt_labels(m.labelnames, key, inf)} "
                        f"{cumulative}"
                    )
                    lines.append(
                        f"{m.name}_sum{_fmt_labels(m.labelnames, key)} "
                        f"{_fmt_value(sums.get(key, 0.0))}"
                    )
                    lines.append(
                        f"{m.name}_count{_fmt_labels(m.labelnames, key)} {cumulative}"
                    )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly nested dict: name -> {kind, labels -> value}."""
        out: dict = {}
        for m in self.metrics():
            entry: dict = {"kind": m.kind, "labelnames": list(m.labelnames)}
            if isinstance(m, (Counter, Gauge)):
                with m._lock:
                    entry["values"] = {
                        json.dumps(dict(zip(m.labelnames, key))): value
                        for key, value in sorted(m._values.items())
                    }
            elif isinstance(m, Histogram):
                with m._lock:
                    entry["buckets"] = list(m.buckets)
                    entry["values"] = {
                        json.dumps(dict(zip(m.labelnames, key))): {
                            "counts": list(counts),
                            "sum": m._sums.get(key, 0.0),
                            "count": sum(counts),
                        }
                        for key, counts in sorted(m._counts.items())
                    }
            out[m.name] = entry
        return out


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def observe_job(job, *, table: str = "", transport: str = "", tenant: str = "") -> None:
    """Fold one finished :class:`~repro.engine.metrics.JobMetrics` into
    the registry (duck-typed -- no import of the engine package).

    Emits per-phase latency histograms (``seabed_query_seconds``) plus
    pruning, shard, failover, and wire counters, labelled by table and
    transport so the multi-tenant service keeps workloads apart.
    """
    if not _ENABLED or job is None:
        return
    reg = _REGISTRY
    hist = reg.histogram(
        "seabed_query_seconds",
        "Per-phase query latency from JobMetrics.",
        labelnames=("phase", "table", "transport", "tenant"),
    )
    labels = {"table": table, "transport": transport, "tenant": tenant}
    for phase, attr in (
        ("total", "total_time"),
        ("server", "server_time"),
        ("client", "client_time"),
        ("network", "network_time"),
        ("queue_wait", "queue_wait"),
        ("wire", "wire_time"),
    ):
        value = getattr(job, attr, 0.0) or 0.0
        if value or phase == "total":
            hist.observe(float(value), phase=phase, **labels)
    counters = (
        ("seabed_partitions_total", "partitions_total",
         "Partitions the job's map stages would touch without pruning."),
        ("seabed_partitions_skipped_total", "partitions_skipped",
         "Partitions the zone-map index let jobs skip."),
        ("seabed_shards_total", "shards_total",
         "Shards in scope for scatter-gathered jobs."),
        ("seabed_shards_skipped_total", "shards_skipped",
         "Shards the ring router / rollups proved irrelevant."),
        ("seabed_failovers_total", "failovers",
         "Shard stages retried on a replica after a worker death."),
        ("seabed_result_bytes_total", "result_bytes",
         "Encrypted result bytes returned to clients."),
    )
    for name, attr, help_text in counters:
        value = getattr(job, attr, 0) or 0
        if value:
            reg.counter(name, help_text, labelnames=("table", "tenant")).inc(
                float(value), table=table, tenant=tenant
            )
