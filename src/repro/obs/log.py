"""Structured event logging for the telemetry layer.

One named logger (``repro.obs``) and one helper, :func:`log_event`, that
renders an event name plus sorted ``key=value`` fields into the message
and also attaches them machine-readably on the log record (``record.event``
/ ``record.fields``) so a JSON formatter can emit them verbatim.

The canonical consumer is the slow-query log: queries whose server time
crosses ``ClusterConfig.slow_query_s`` emit a ``slow_query`` event with
timings, table, and row counts -- never plaintexts or key material (the
same rule every telemetry surface follows; see
``repro.attacks.telemetry``).
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "log_event"]

LOGGER_NAME = "repro.obs"


def get_logger(suffix: str = "") -> logging.Logger:
    """The telemetry logger, or a dotted child (``get_logger("slow")``)."""
    name = f"{LOGGER_NAME}.{suffix}" if suffix else LOGGER_NAME
    return logging.getLogger(name)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def log_event(event: str, *, level: int = logging.INFO,
              logger: logging.Logger | None = None, **fields) -> None:
    """Emit one structured event: ``event key=value ...``.

    Fields are sorted for stable output; the raw dict rides on the record
    as ``record.fields`` for structured sinks.
    """
    log = logger or get_logger()
    if not log.isEnabledFor(level):
        return
    rendered = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(fields.items()))
    message = f"{event} {rendered}" if rendered else event
    log.log(level, message, extra={"event": event, "fields": fields})
