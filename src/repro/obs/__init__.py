"""``repro.obs`` -- end-to-end observability for the Seabed reproduction.

Three small modules:

- :mod:`repro.obs.trace` -- spans with an ambient contextvars parent,
  cross-process propagation helpers, Chrome-trace / text exporters.
- :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges, and labelled histograms with Prometheus text exposition and a
  JSON snapshot.
- :mod:`repro.obs.log` -- the structured ``repro.obs`` logger and the
  slow-query event helper.

The package is intentionally stdlib-only so every layer -- including the
leaf ``repro.ops`` module and forked shard workers -- can import it
without cost or cycles.
"""

from repro.obs.log import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, get_registry, observe_job
from repro.obs.trace import (
    Span,
    Tracer,
    chrome_trace,
    continue_context,
    current_context,
    get_tracer,
    record_span,
    render_tree,
    set_process_label,
    span,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace",
    "continue_context",
    "current_context",
    "get_logger",
    "get_registry",
    "get_tracer",
    "log_event",
    "observe_job",
    "record_span",
    "render_tree",
    "set_enabled",
    "set_process_label",
    "span",
]


def set_enabled(flag: bool) -> None:
    """Switch span recording *and* metric updates on or off together."""
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    _trace.set_enabled(flag)
    _metrics.set_enabled(flag)
