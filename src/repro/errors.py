"""Exception hierarchy for the Seabed reproduction.

Every error raised deliberately by this package derives from
:class:`SeabedError`, so callers can catch one type at the proxy boundary.
"""

from __future__ import annotations


class SeabedError(Exception):
    """Base class for all errors raised by the repro package."""


class CryptoError(SeabedError):
    """A cryptographic operation failed (bad key size, domain overflow...)."""


class KernelUnsupported(CryptoError):
    """A scheme does not implement this batch-kernel operation.

    The :class:`~repro.crypto.kernel.Kernel` protocol is uniform across
    schemes, but not every operation is meaningful everywhere (ORE
    ciphertexts cannot be decrypted; Paillier reveals no order).  Callers
    that probe capabilities catch this one type.
    """


class EncodingError(SeabedError):
    """An ID-list codec was fed malformed bytes or an invalid ID sequence."""


class PlanningError(SeabedError):
    """The data planner could not produce an encrypted schema."""


class TranslationError(SeabedError):
    """A query cannot be rewritten against the encrypted schema."""


class ExecutionError(SeabedError):
    """The engine failed while executing a physical plan."""


class StorageError(SeabedError):
    """A persistent partition store is missing, corrupt, or incompatible."""


class DecryptionError(SeabedError):
    """The client-side decryption module received an inconsistent result."""


class ParseError(SeabedError):
    """The SQL-subset parser rejected the query text."""


class TransportError(SeabedError):
    """A transport could not complete a call (connection loss, timeout,
    or an operation the transport does not support)."""


class CodecError(TransportError):
    """A wire frame was truncated, corrupt, or of an unsupported version."""


class AuthError(SeabedError):
    """The service rejected the session's bearer token."""


class Backpressure(SeabedError):
    """The service shed the request under admission control (RETRY_LATER).

    ``retry_after`` is the server's suggested delay in seconds before
    retrying, or ``None`` when it offered no hint.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after
