"""Network service layer: the repo's first real process boundary.

Seabed's threat model (Section 3) is a *keyless* cloud server executing
analytics over ciphertexts on behalf of remote clients.  This package
makes that boundary real: :mod:`repro.net.service` hosts one or more
:class:`~repro.core.server.SeabedServer` stores behind an asyncio TCP
listener with bearer-token auth and per-tenant admission control;
:mod:`repro.net.client` provides :class:`RemoteTransport`, a socket
client that plugs into :class:`~repro.core.session.SeabedSession`
unchanged; :mod:`repro.net.codec` is the versioned, length-prefixed
binary wire format both ends speak; and :mod:`repro.net.audit` proves
the serving process holds no key material.

Entry points::

    handle = repro.serve(stores=["/data/stores/sales"])
    token = handle.mint_token("alice")
    session = repro.connect(handle.address, token, master_key=KEY)
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

# Lazy re-exports (same idiom as the package root): importing
# ``repro.net.codec`` alone must not drag in asyncio service machinery.
_LAZY = {
    "RemoteTransport": "repro.net.client",
    "connect": "repro.net.client",
    "SeabedService": "repro.net.service",
    "ServiceConfig": "repro.net.service",
    "ServiceHandle": "repro.net.service",
    "serve": "repro.net.service",
    "audit_keyless": "repro.net.audit",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str) -> Any:
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.net' has no attribute {name!r}") from None
    return getattr(import_module(module), name)
