"""Asyncio Seabed service: the untrusted server as a real process.

Hosts one or more :class:`~repro.core.server.SeabedServer` stores behind
a TCP listener speaking the :mod:`repro.net.codec` frame protocol, so
many concurrent :class:`~repro.core.session.SeabedSession` clients (via
:class:`~repro.net.client.RemoteTransport`) can query, scan, append to
and compact the same ciphertext stores from other processes or hosts.

Three properties define the boundary:

- **Keyless.**  The service's state is ciphertexts, DET/ORE tokens and
  key-free sidecar payloads; it never constructs a
  :class:`~repro.crypto.keys.KeyChain` or any scheme object.  Clients
  can verify this live via the ``audit`` RPC, which runs
  :func:`repro.net.audit.audit_keyless` over the service's own object
  graph inside the serving process.
- **Token-gated.**  Bearer tokens are minted from the existing
  :class:`~repro.core.access.AccessController` machinery: a token maps
  to a user whose grant limits the tables it may touch, and revocation
  is instant without re-encryption (paper Section 4.3).
- **Admission-controlled.**  Each tenant gets a bounded in-flight
  budget plus a bounded wait queue; overload is answered with a typed
  ``Backpressure`` (RETRY_LATER) reply, never a hang, and every request
  carries a server-side timeout.

Run standalone with ``python -m repro.net.service --store PATH ...`` or
in-process via :func:`serve`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import secrets
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any

from repro.core import persistence as ps
from repro.core import server as srv
from repro.core.access import AccessController, AccessError
from repro.core.transport import LocalTransport, open_committed_store
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.errors import (
    AuthError,
    Backpressure,
    CodecError,
    SeabedError,
    StorageError,
    TransportError,
)
from repro.net import codec
from repro.net.audit import audit_keyless
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; the bound port is on the handle
    backend: str = "serial"  # execution backend for hosted queries
    workers: int = 0
    storage_dir: str | None = None
    pruning: bool = True
    auth_required: bool = True
    #: Concurrent requests one tenant may have executing.
    max_in_flight: int = 4
    #: Requests one tenant may have *waiting* beyond the in-flight budget
    #: before the service answers Backpressure (RETRY_LATER).
    queue_depth: int = 16
    #: Server-side cap on any single request, seconds (None = unbounded).
    #: A client's per-call ``timeout=`` can only tighten it.
    request_timeout: float | None = 30.0
    #: Threads executing request bodies (the asyncio loop never blocks).
    executor_threads: int = 8
    #: Backoff hint carried in Backpressure replies, seconds.
    retry_after: float = 0.05


class _Tenant:
    """Per-user admission state, touched only on the event loop."""

    __slots__ = ("sem", "waiting")

    def __init__(self, max_in_flight: int):
        self.sem = asyncio.Semaphore(max_in_flight)
        self.waiting = 0


class SeabedService:
    """One keyless server process: stores, auth, admission, dispatch."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        stores: tuple[str, ...] | list[str] = (),
        sharded: tuple[str, ...] | list[str] = (),
    ):
        self.config = config or ServiceConfig()
        self.cluster = SimulatedCluster(
            ClusterConfig(
                backend=self.config.backend,
                workers=self.config.workers,
                storage_dir=self.config.storage_dir,
            )
        )
        self.server = srv.SeabedServer(self.cluster, pruning=self.config.pruning)
        self._local = LocalTransport(self.server, self.cluster)
        self.access = AccessController()
        self._tokens: dict[str, str] = {}  # token -> user
        self._tenants: dict[str, _Tenant] = {}
        self._sharded_roots: dict[str, str] = {}
        self._sharded_stores: dict[str, Any] = {}  # name -> ShardedStore
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="seabed-svc",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self.bound: tuple[str, int] | None = None
        if not self.config.auth_required:
            self.access.grant("anonymous")
        for path in stores:
            self.host_store(path)
        for path in sharded:
            self.host_sharded(path)

    # -- hosting -----------------------------------------------------------

    def host_store(self, path: str) -> str:
        """Attach the partition store at ``path`` at its committed
        snapshot; returns the table name now being served."""
        resolved = self.cluster.config.resolve_store_path(path)
        table = open_committed_store(resolved)
        self.server.register(table)
        return table.name

    def host_sharded(self, path: str) -> str:
        """Host the persisted sharded table at ``path``: respawn the
        worker fleet over the existing node directories and roll back any
        shard tails a dead writer never committed.  Entirely key-free --
        the sidecar's schema/cursor metadata is all this needs."""
        from repro.shard.coordinator import (  # lazy: avoids package cycle
            ShardCoordinator,
            ShardedStore,
            ShardTopology,
        )

        root = self.cluster.config.resolve_store_path(path)
        state, _attach, sharding = ps.sharded_from_dict(ps.read_sharded_payload(root))
        name = state.schema.name
        topology = ShardTopology.from_dict(sharding["topology"])
        store = ShardedStore(root, topology, self.cluster.config)
        for shard, cursor in sharding["shards"].items():
            committed = int(cursor["num_rows"])
            on_disk = store.shard_rows(shard)
            if on_disk < committed:
                raise StorageError(
                    f"shard {shard} of {name!r} holds {on_disk} rows but its "
                    f"sidecar committed {committed}; the store is stale or corrupt"
                )
            if on_disk > committed:
                store.truncate_shard(shard, committed)
        self.server.register_sharded(name, ShardCoordinator(store, self.cluster))
        self._sharded_roots[name] = root
        self._sharded_stores[name] = store
        return name

    # -- auth --------------------------------------------------------------

    def mint_token(
        self,
        user: str,
        tables: set[str] | None = None,
        *,
        token: str | None = None,
    ) -> str:
        """Grant ``user`` access to ``tables`` (None = all) and return a
        bearer token for the wire.  Tokens are capability handles over
        the proxy-side access machinery: :meth:`revoke` invalidates them
        instantly, without touching ciphertexts."""
        self.access.grant(user, tables)
        value = token or secrets.token_urlsafe(24)
        self._tokens[value] = user
        return value

    def revoke(self, user: str) -> None:
        self.access.revoke(user)

    def _authenticate(self, body: Any) -> str:
        if not isinstance(body, dict):
            raise AuthError("malformed hello")
        token = body.get("token")
        if not self.config.auth_required:
            user = body.get("user") or (
                self._tokens.get(token, "anonymous") if token else "anonymous"
            )
            if not self.access.is_active(user):
                self.access.grant(user)
            return user
        user = self._tokens.get(token) if isinstance(token, str) else None
        if user is None:
            raise AuthError("unknown bearer token")
        if not self.access.is_active(user):
            raise AuthError(f"token for user {user!r} has been revoked")
        return user

    # -- request execution (executor threads) ------------------------------

    def _check(self, user: str, table: str) -> None:
        self.access.check(user, table)

    def _run_op(self, user: str, op: str, args: dict[str, Any]) -> Any:
        local = self._local
        if op == "execute":
            request = args["request"]
            if not isinstance(request, srv.ServerQuery):
                raise CodecError("execute expects a ServerQuery request")
            self._check(user, request.table)
            if request.join is not None:
                self._check(user, request.join.build_table)
            return local.execute(request)
        if op == "scan":
            self._check(user, args["table"])
            return local.scan(args["table"], args["columns"], args.get("filter"))
        if op == "upload":
            batch = codec.unpack_table(args["batch"])
            self._check(user, batch.name)
            return local.upload(batch)
        if op == "append_batch":
            self._check(user, args["table"])
            batch = codec.unpack_table(args["batch"])
            return local.append_batch(args["table"], batch, args["column_meta"])
        if op == "table_meta":
            self._check(user, args["table"])
            return local.table_meta(args["table"])
        if op == "storage_bytes":
            self._check(user, args["table"])
            return local.storage_bytes(args["table"])
        if op == "save_store":
            self._check(user, args["table"])
            return local.save_store(
                args["table"],
                args["path"],
                args["column_meta"],
                overwrite=bool(args.get("overwrite", False)),
            )
        if op == "commit_state":
            self._check(user, args["table"])
            return local.commit_state(args["table"], args["payload"])
        if op == "read_store_state":
            payload = local.read_store_state(args["path"])
            self._check(user, payload["schema"]["name"])
            return payload
        if op == "read_sharded_state":
            payload = local.read_sharded_state(args["path"])
            self._check(user, payload["schema"]["name"])
            return payload
        if op == "store_rows":
            self._check(user, args["table"])
            return local.store_rows(args["table"])
        if op == "truncate_store":
            self._check(user, args["table"])
            return local.truncate_store(args["table"], int(args["committed"]))
        if op == "reopen":
            self._check(user, args["table"])
            return local.reopen(args["table"])
        if op == "compact":
            self._check(user, args["table"])
            return local.compact(args["table"], target_rows=args.get("target_rows"))
        if op == "store_stats":
            self._check(user, args["table"])
            return local.store_stats(args["table"])
        if op == "generations":
            self._check(user, args["table"])
            return local.generations(args["table"])
        if op == "rebuild_index":
            self._check(user, args["table"])
            return local.rebuild_index(args["table"])
        if op == "attach":
            resolved = self.cluster.config.resolve_store_path(args["path"])
            table = open_committed_store(resolved)
            self._check(user, table.name)
            self.server.register(table)
            return {"name": table.name, "num_rows": table.num_rows}
        if op == "attach_sharded":
            payload = local.read_sharded_state(args["path"])
            name = payload["schema"]["name"]
            self._check(user, name)
            root = self._sharded_roots.get(name)
            if root is None:
                self.host_sharded(args["path"])
                root = self._sharded_roots[name]
            return {"name": name, "root": root}
        if op == "audit":
            result = audit_keyless(self)
            return {
                "ok": result.ok,
                "objects_walked": result.objects_walked,
                "flagged": list(result.flagged),
            }
        if op == "metrics":
            # Live introspection: the serving process's own registry.
            # Auth-gated like every op (the connection already passed
            # _authenticate); contains only names, labels and numbers.
            reg = obs_metrics.get_registry()
            if args.get("fmt") == "json":
                return {"fmt": "json", "metrics": reg.snapshot()}
            return {"fmt": "prometheus", "text": reg.prometheus()}
        if op == "trace":
            limit = args.get("limit")
            spans = obs_trace.get_tracer().spans(
                trace_id=args.get("trace_id"),
                limit=int(limit) if limit is not None else 256,
            )
            return {"spans": [s.to_dict() for s in spans]}
        raise TransportError(f"unknown service operation {op!r}")

    def _traced_run(
        self,
        user: str,
        op: str,
        args: dict[str, Any],
        trace_ctx: dict[str, Any] | None,
        queue_wait: float,
    ) -> tuple[Any, list[dict]]:
        """Executor-thread wrapper around :meth:`_run_op`.

        ``run_in_executor`` does not propagate contextvars, so the
        caller's trace context is re-installed here explicitly.  Returns
        ``(result, spans)`` where ``spans`` are the service-side span
        dicts to piggyback on the reply -- empty unless the client sent a
        trace context (local-only spans stay in this process's tracer
        for the ``trace`` RPC instead).
        """
        t_start = time.perf_counter()
        trace_id = None
        try:
            with obs_trace.continue_context(trace_ctx):
                with obs_trace.span(f"service:{op}", tenant=user) as sp:
                    if sp is not None:
                        trace_id = sp.trace_id
                        if queue_wait > 0:
                            obs_trace.record_span(
                                "service:queue_wait",
                                t_start - queue_wait,
                                t_start,
                            )
                    result = self._run_op(user, op, args)
        finally:
            obs_metrics.get_registry().histogram(
                "seabed_service_request_seconds",
                "Service request latency by operation and tenant.",
                labelnames=("op", "tenant"),
            ).observe(time.perf_counter() - t_start, op=op, tenant=user)
        spans: list[dict] = []
        if trace_id is not None and trace_ctx is not None:
            spans = [s.to_dict() for s in obs_trace.get_tracer().take(trace_id)]
        return result, spans

    @staticmethod
    def _trace_of(body: dict[str, Any]) -> dict[str, Any] | None:
        """The optional trace context in a request body.  Absent or
        malformed (a version-skewed or legacy client) yields ``None`` --
        the request simply runs with a local-only trace."""
        ctx = body.get("trace")
        return ctx if isinstance(ctx, dict) else None

    # -- admission + dispatch (event loop) ---------------------------------

    def _tenant(self, user: str) -> _Tenant:
        tenant = self._tenants.get(user)
        if tenant is None:
            tenant = self._tenants[user] = _Tenant(self.config.max_in_flight)
        return tenant

    async def _admit(self, tenant: _Tenant) -> bool:
        """Take one in-flight slot, or report overload.  The wait queue
        is bounded: beyond ``queue_depth`` waiters the caller gets an
        immediate Backpressure reply instead of an unbounded stall."""
        if not tenant.sem.locked():
            await tenant.sem.acquire()
            return True
        if tenant.waiting >= self.config.queue_depth:
            return False
        tenant.waiting += 1
        try:
            await tenant.sem.acquire()
        finally:
            tenant.waiting -= 1
        return True

    async def _dispatch(self, user: str, body: Any) -> dict[str, Any]:
        if not isinstance(body, dict) or not isinstance(body.get("op"), str):
            return _error_reply(CodecError("malformed request body"))
        op = body["op"]
        args = body.get("args") or {}
        trace_ctx = self._trace_of(body)
        if op == "ping":
            return {"ok": True, "result": {"server": "seabed", "user": user}}
        tenant = self._tenant(user)
        queued_at = time.monotonic()
        if not await self._admit(tenant):
            obs_metrics.get_registry().counter(
                "seabed_backpressure_total",
                "Requests rejected by per-tenant admission control.",
                labelnames=("tenant",),
            ).inc(1.0, tenant=user)
            return _error_reply(
                Backpressure(
                    f"tenant {user!r} is over its admission budget "
                    f"({self.config.max_in_flight} in flight, "
                    f"{self.config.queue_depth} queued); retry later",
                    retry_after=self.config.retry_after,
                )
            )
        queue_wait = time.monotonic() - queued_at
        timeout = _effective_timeout(body.get("timeout"), self.config.request_timeout)
        assert self._loop is not None
        future = self._loop.run_in_executor(
            self._pool,
            partial(self._traced_run, user, op, args, trace_ctx, queue_wait),
        )
        # The slot is held until the executor thread actually finishes --
        # a timed-out request keeps consuming its budget rather than
        # letting a tenant stack abandoned work.  The callback also
        # retrieves the exception so abandoned futures never warn.
        future.add_done_callback(
            lambda f: (tenant.sem.release(), f.cancelled() or f.exception())
        )
        try:
            result, spans = await asyncio.wait_for(asyncio.shield(future), timeout)
        except (asyncio.TimeoutError, TimeoutError):
            return _error_reply(
                TransportError(f"request {op!r} timed out after {timeout}s server-side")
            )
        except Exception as exc:  # noqa: BLE001 -- typed reply, never a hang
            return _error_reply(exc)
        if isinstance(result, srv.ServerResponse) and result.metrics is not None:
            result.metrics.queue_wait = queue_wait
        reply: dict[str, Any] = {"ok": True, "result": result}
        if spans:
            reply["spans"] = spans
        return reply

    # -- connection handling -----------------------------------------------

    async def _read(self, reader: asyncio.StreamReader) -> tuple[str, Any]:
        header = await reader.readexactly(4)
        (length,) = struct.unpack("<I", header)
        if length > codec.MAX_FRAME_BYTES:
            raise CodecError(
                f"peer announced a {length}-byte frame (cap {codec.MAX_FRAME_BYTES})"
            )
        return codec.decode_payload(await reader.readexactly(length))

    async def _write(
        self, writer: asyncio.StreamWriter, kind: str, body: Any
    ) -> None:
        writer.write(codec.encode_frame(kind, body))
        await writer.drain()

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                kind, hello = await self._read(reader)
                if kind != "hello":
                    raise AuthError(f"expected hello, got {kind!r} frame")
                user = self._authenticate(hello)
            except (CodecError, AuthError) as exc:
                await self._write(writer, "hello", _error_reply(exc))
                return
            await self._write(
                writer,
                "hello",
                {
                    "ok": True,
                    "result": {
                        "server": "seabed",
                        "wire_version": codec.WIRE_VERSION,
                        "user": user,
                    },
                },
            )
            while True:
                try:
                    kind, body = await self._read(reader)
                except asyncio.IncompleteReadError:
                    return  # client went away
                except CodecError as exc:
                    # Unparseable input: answer typed, then drop the
                    # connection (the stream may be out of sync).
                    await self._write(writer, "rep", _error_reply(exc))
                    return
                if kind != "req":
                    await self._write(
                        writer,
                        "rep",
                        _error_reply(CodecError(f"unexpected {kind!r} frame")),
                    )
                    return
                await self._write(writer, "rep", await self._dispatch(user, body))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-write; nothing to answer
        except asyncio.CancelledError:
            pass  # service shutting down mid-connection; drop cleanly
        finally:
            writer.close()
            try:
                # A task cancelled during shutdown re-raises CancelledError
                # from any await; the transport is closed either way.
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle ---------------------------------------------------------

    async def _serve_forever(
        self, ready: threading.Event, holder: dict[str, Any]
    ) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        sock = server.sockets[0].getsockname()
        self.bound = (sock[0], sock[1])
        holder["bound"] = self.bound
        ready.set()
        async with server:
            await self._stop.wait()

    def start(self) -> "ServiceHandle":
        """Run the listener on a background thread; returns a handle with
        the bound address once the socket is accepting."""
        if self._thread is not None:
            raise TransportError("service already started")
        ready = threading.Event()
        holder: dict[str, Any] = {}

        def run() -> None:
            try:
                asyncio.run(self._serve_forever(ready, holder))
            except Exception as exc:  # noqa: BLE001 -- surfaced to start()
                holder["error"] = exc
            finally:
                ready.set()

        self._thread = threading.Thread(
            target=run, name="seabed-service", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=30)
        if "error" in holder:
            raise TransportError(f"service failed to start: {holder['error']}")
        if "bound" not in holder:
            raise TransportError("service failed to bind within 30s")
        host, port = holder["bound"]
        return ServiceHandle(self, host, port)

    def stop(self) -> None:
        """Stop accepting, close the listener and join the loop thread.
        Idempotent."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._pool.shutdown(wait=False, cancel_futures=True)
        for store in self._sharded_stores.values():
            store.close()
        self.cluster.close()


@dataclass
class ServiceHandle:
    """A running service: address, token minting, and shutdown."""

    service: SeabedService
    host: str
    port: int

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def mint_token(
        self, user: str, tables: set[str] | None = None, *, token: str | None = None
    ) -> str:
        return self.service.mint_token(user, tables, token=token)

    def revoke(self, user: str) -> None:
        self.service.revoke(user)

    def stop(self) -> None:
        self.service.stop()

    close = stop

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def serve(
    stores: tuple[str, ...] | list[str] = (),
    *,
    sharded: tuple[str, ...] | list[str] = (),
    config: ServiceConfig | None = None,
    **overrides: Any,
) -> ServiceHandle:
    """Host ``stores`` (and ``sharded`` roots) on a background service and
    return its handle::

        handle = repro.serve(stores=["/data/stores/sales"])
        token = handle.mint_token("alice")
        session = repro.connect(handle.address, token, master_key=KEY)
    """
    if config is None:
        config = ServiceConfig(**overrides)
    elif overrides:
        raise TransportError("pass either config= or keyword overrides, not both")
    service = SeabedService(config, stores=tuple(stores), sharded=tuple(sharded))
    return service.start()


def _error_reply(exc: Exception) -> dict[str, Any]:
    reply: dict[str, Any] = {
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, Backpressure):
        reply["retry_after"] = exc.retry_after
    if not isinstance(exc, (SeabedError, AccessError)):
        # Unexpected server-side failure: keep the class name for the
        # log line but clients map it to a generic TransportError.
        reply["error"] = "TransportError"
        reply["message"] = f"{type(exc).__name__}: {exc}"
    return reply


def _effective_timeout(
    requested: Any, ceiling: float | None
) -> float | None:
    limit = float(requested) if isinstance(requested, (int, float)) else None
    if limit is None:
        return ceiling
    if ceiling is None:
        return limit
    return min(limit, ceiling)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.service",
        description="Host Seabed partition stores behind a TCP service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--store", action="append", default=[], help="partition store path (repeat)"
    )
    parser.add_argument(
        "--sharded", action="append", default=[], help="sharded table root (repeat)"
    )
    parser.add_argument(
        "--backend", default="serial", choices=["serial", "threads", "processes"]
    )
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--storage-dir", default=None)
    parser.add_argument("--max-in-flight", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--request-timeout", type=float, default=30.0)
    parser.add_argument("--no-pruning", action="store_true")
    parser.add_argument("--no-auth", action="store_true")
    parser.add_argument(
        "--grant",
        action="append",
        default=[],
        metavar="USER:TOKEN",
        help="pre-mint a bearer token (repeat); USER gets all tables",
    )
    parser.add_argument(
        "--info-file",
        default=None,
        help="write {'host','port'} JSON here once the socket is bound",
    )
    args = parser.parse_args(argv)
    # Standalone serving process: name it in exported traces.
    obs_trace.set_process_label("seabed-service")
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        storage_dir=args.storage_dir,
        pruning=not args.no_pruning,
        auth_required=not args.no_auth,
        max_in_flight=args.max_in_flight,
        queue_depth=args.queue_depth,
        request_timeout=args.request_timeout,
    )
    service = SeabedService(
        config, stores=tuple(args.store), sharded=tuple(args.sharded)
    )
    for grant in args.grant:
        user, _, token = grant.partition(":")
        if not user or not token:
            parser.error(f"--grant wants USER:TOKEN, got {grant!r}")
        service.mint_token(user, token=token)
    handle = service.start()
    if args.info_file:
        with open(args.info_file, "w", encoding="utf-8") as fh:
            json.dump({"host": handle.host, "port": handle.port}, fh)
    print(f"seabed service listening on {handle.host}:{handle.port}", flush=True)
    try:
        assert service._thread is not None
        service._thread.join()
    except KeyboardInterrupt:
        handle.stop()


if __name__ == "__main__":
    main()
