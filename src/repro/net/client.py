"""Client half of the service boundary: :class:`RemoteTransport`.

A blocking socket client for the :mod:`repro.net.service` protocol that
plugs into :class:`~repro.core.session.SeabedSession` via the
:class:`~repro.core.transport.Transport` interface -- queries, scans,
appends, compaction and sharded scatter-gather all flow through the same
method set the in-process :class:`~repro.core.transport.LocalTransport`
implements, so session code is identical either way.

Failure surface is typed, never a raw ``OSError``:

- connection loss / refused / mid-frame close ->
  :class:`~repro.errors.TransportError` (idempotent reads are retried
  with exponential backoff and a fresh connection first);
- bad token or revocation -> :class:`~repro.errors.AuthError`;
- admission-control rejection -> :class:`~repro.errors.Backpressure`
  with its ``retry_after`` hint;
- malformed frames / version skew -> :class:`~repro.errors.CodecError`.

:func:`connect` is the top-level entry point::

    session = repro.connect(("127.0.0.1", 7733), token, master_key=KEY)
    session.open_table("sales")
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.core.access import AccessError  # noqa: F401 -- registers for _error_class
from repro.core.transport import Transport
from repro.errors import (
    AuthError,
    Backpressure,
    CodecError,
    SeabedError,
    TransportError,
)
from repro.net import codec
from repro.obs import trace as obs_trace

#: Ops safe to replay on a fresh connection after a transport failure:
#: pure reads, plus reconcile-style ops whose replay converges.
_IDEMPOTENT = {
    "ping",
    "execute",
    "scan",
    "table_meta",
    "storage_bytes",
    "read_store_state",
    "read_sharded_state",
    "store_rows",
    "store_stats",
    "generations",
    "audit",
    "metrics",
    "trace",
    "reopen",
    "attach",
    "attach_sharded",
}


def _error_class(name: str) -> type[SeabedError] | None:
    """Resolve a wire error name against the SeabedError hierarchy."""
    stack = [SeabedError]
    while stack:
        cls = stack.pop()
        if cls.__name__ == name:
            return cls
        stack.extend(cls.__subclasses__())
    return None


class RemoteTransport(Transport):
    """Socket client for a :class:`~repro.net.service.SeabedService`.

    One connection, one request at a time (the session API is
    synchronous); concurrency comes from multiple sessions, exactly as
    multiple tenants hit the service.  ``timeout`` per call rides in the
    request envelope so the *server* enforces it too; the socket itself
    waits slightly longer so the typed server-side timeout reply wins
    over a raw socket timeout when both trigger.
    """

    local = False

    def __init__(
        self,
        address: tuple[str, int] | str,
        token: str | None = None,
        *,
        user: str | None = None,
        connect_timeout: float = 10.0,
        default_timeout: float | None = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
    ):
        if isinstance(address, str):
            host, _, port = address.rpartition(":")
            if not host or not port.isdigit():
                raise TransportError(
                    f"address {address!r} is not 'host:port' or (host, port)"
                )
            address = (host, int(port))
        self.address = address
        self._token = token
        self._user = user
        self._connect_timeout = connect_timeout
        self._default_timeout = default_timeout
        self._retries = max(1, retries)
        self._backoff = backoff
        self._sock: socket.socket | None = None
        self.server_info: dict[str, Any] | None = None
        self._connect()  # fail fast on bad address / bad token

    # -- connection management ---------------------------------------------

    def _connect(self) -> None:
        try:
            sock = socket.create_connection(
                self.address, timeout=self._connect_timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot reach seabed service at {self.address[0]}:"
                f"{self.address[1]}: {exc}"
            ) from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            codec.write_frame(
                sock, "hello", {"token": self._token, "user": self._user}
            )
            kind, body = codec.read_frame(sock)
        except OSError as exc:
            sock.close()
            raise TransportError(f"handshake failed: {exc}") from exc
        except CodecError:
            sock.close()
            raise
        if kind != "hello" or not isinstance(body, dict):
            sock.close()
            raise CodecError(f"expected a hello reply, got {kind!r}")
        if not body.get("ok"):
            sock.close()
            raise self._as_error(body)
        self.server_info = body.get("result") or {}
        self._sock = sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._drop()

    # -- request plumbing ---------------------------------------------------

    def _as_error(self, body: dict[str, Any]) -> SeabedError:
        name = body.get("error", "TransportError")
        message = str(body.get("message", "remote error"))
        if name == "Backpressure":
            retry_after = body.get("retry_after")
            return Backpressure(
                message,
                retry_after=float(retry_after) if retry_after is not None else None,
            )
        cls = _error_class(name) if isinstance(name, str) else None
        if cls is None or cls is SeabedError:
            return TransportError(f"{name}: {message}")
        return cls(message)

    def _trace_context(self) -> dict[str, Any] | None:
        """The trace context attached to outgoing requests (the ambient
        span's ids, or ``None``).  A separate method so version-skew
        tests can stub a legacy client that never sends one."""
        return obs_trace.current_context()

    def _request(
        self, op: str, args: dict[str, Any], *, timeout: float | None = None
    ) -> Any:
        if not obs_trace.enabled():
            return self._request_inner(op, args, None, timeout)
        # The wire span covers encode + socket + decode + retries; the
        # server parents its own spans under it via the sent context.
        with obs_trace.span(f"wire:{op}"):
            return self._request_inner(op, args, self._trace_context(), timeout)

    def _request_inner(
        self,
        op: str,
        args: dict[str, Any],
        trace_ctx: dict[str, Any] | None,
        timeout: float | None,
    ) -> Any:
        limit = timeout if timeout is not None else self._default_timeout
        attempts = self._retries if op in _IDEMPOTENT else 1
        last: Exception | None = None
        envelope: dict[str, Any] = {"op": op, "args": args, "timeout": limit}
        if trace_ctx is not None:
            envelope["trace"] = trace_ctx
        for attempt in range(attempts):
            if attempt:
                time.sleep(self._backoff * (2 ** (attempt - 1)))
            try:
                if self._sock is None:
                    self._connect()
                sock = self._sock
                assert sock is not None
                # Grace beyond the server-side budget so its typed
                # timeout reply arrives before the socket gives up.
                sock.settimeout(limit + 5.0 if limit is not None else None)
                codec.write_frame(sock, "req", envelope)
                kind, body = codec.read_frame(sock)
            except (AuthError, Backpressure):
                raise
            except socket.timeout as exc:
                self._drop()
                raise TransportError(
                    f"request {op!r} timed out after {limit}s on the wire"
                ) from exc
            except (OSError, CodecError) as exc:
                if isinstance(exc, CodecError) and "version skew" in str(exc):
                    self._drop()
                    raise  # retrying cannot fix a protocol mismatch
                self._drop()
                last = exc
                continue
            if kind != "rep" or not isinstance(body, dict):
                self._drop()
                raise CodecError(f"expected a rep frame, got {kind!r}")
            if body.get("ok"):
                # Server-side spans piggyback on the reply (absent from
                # skewed peers -- then the trace is simply local-only).
                spans = body.get("spans")
                if spans:
                    obs_trace.get_tracer().ingest(spans)
                return body.get("result")
            raise self._as_error(body)
        if isinstance(last, CodecError):
            raise last
        raise TransportError(
            f"request {op!r} failed after {attempts} attempt(s): {last}"
        ) from last

    # -- Transport interface ------------------------------------------------

    def execute(self, request, *, timeout: float | None = None):
        started = time.monotonic()
        response = self._request("execute", {"request": request}, timeout=timeout)
        metrics = getattr(response, "metrics", None)
        if metrics is not None:
            # client-observed round trip: serialization + network + service
            metrics.wire_time = time.monotonic() - started
        return response

    def scan(self, table, columns, filt, *, timeout: float | None = None):
        return self._request(
            "scan",
            {"table": table, "columns": list(columns), "filter": filt},
            timeout=timeout,
        )

    def upload(self, encrypted) -> None:
        self._request("upload", {"batch": codec.pack_table(encrypted)})

    def append_batch(self, table, encrypted, column_meta) -> int:
        return int(
            self._request(
                "append_batch",
                {
                    "table": table,
                    "batch": codec.pack_table(encrypted),
                    "column_meta": dict(column_meta),
                },
            )
        )

    def table_meta(self, table: str) -> dict[str, Any] | None:
        return self._request("table_meta", {"table": table})

    def storage_bytes(self, table: str) -> int:
        return int(self._request("storage_bytes", {"table": table}))

    def save_store(
        self,
        table: str,
        path: str,
        column_meta: dict[str, str],
        overwrite: bool = False,
    ) -> str:
        return self._request(
            "save_store",
            {
                "table": table,
                "path": path,
                "column_meta": dict(column_meta),
                "overwrite": overwrite,
            },
        )

    def commit_state(self, table: str, payload: dict[str, Any]) -> None:
        self._request("commit_state", {"table": table, "payload": payload})

    def read_store_state(self, path: str) -> dict[str, Any]:
        return self._request("read_store_state", {"path": path})

    def read_sharded_state(self, path: str) -> dict[str, Any]:
        return self._request("read_sharded_state", {"path": path})

    def store_rows(self, table: str) -> int:
        return int(self._request("store_rows", {"table": table}))

    def truncate_store(self, table: str, committed: int) -> None:
        self._request("truncate_store", {"table": table, "committed": committed})

    def reopen(self, table: str) -> None:
        self._request("reopen", {"table": table})

    def compact(self, table: str, target_rows: int | None = None) -> dict | None:
        return self._request("compact", {"table": table, "target_rows": target_rows})

    def store_stats(self, table: str) -> dict:
        return self._request("store_stats", {"table": table})

    def generations(self, table: str) -> list[dict]:
        return self._request("generations", {"table": table})

    def rebuild_index(self, table: str) -> dict:
        return self._request("rebuild_index", {"table": table})

    def attach(self, path: str) -> dict[str, Any]:
        return self._request("attach", {"path": path})

    def attach_sharded(self, path: str) -> dict[str, Any]:
        return self._request("attach_sharded", {"path": path})

    # -- extras --------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self._request("ping", {})

    def audit_server(self) -> dict[str, Any]:
        """Run the keyless audit *inside the serving process* and return
        its summary: ``{"ok", "objects_walked", "flagged"}``."""
        return self._request("audit", {})

    def server_metrics(self, fmt: str = "prometheus") -> dict[str, Any]:
        """Scrape the serving process's metrics registry.

        ``fmt="prometheus"`` returns ``{"fmt", "text"}`` with the text
        exposition; ``fmt="json"`` returns ``{"fmt", "metrics"}`` with
        the nested snapshot.
        """
        return self._request("metrics", {"fmt": fmt})

    def server_trace(
        self, trace_id: str | None = None, limit: int = 256
    ) -> dict[str, Any]:
        """Fetch recent spans retained by the serving process (local-only
        traces of untraced requests included), optionally filtered by
        ``trace_id``; returns ``{"spans": [span dicts...]}``."""
        return self._request("trace", {"trace_id": trace_id, "limit": limit})


def connect(
    address: tuple[str, int] | str,
    token: str | None = None,
    *,
    user: str | None = None,
    connect_timeout: float = 10.0,
    default_timeout: float | None = 60.0,
    retries: int = 3,
    backoff: float = 0.05,
    **session_kwargs: Any,
):
    """Open a :class:`~repro.core.session.SeabedSession` against a remote
    service.  ``session_kwargs`` (``master_key=``, ``mode=``, ...) are the
    usual session arguments -- keys stay on this side of the wire."""
    from repro.core.session import SeabedSession

    transport = RemoteTransport(
        address,
        token,
        user=user,
        connect_timeout=connect_timeout,
        default_timeout=default_timeout,
        retries=retries,
        backoff=backoff,
    )
    return SeabedSession(transport=transport, **session_kwargs)


__all__ = ["RemoteTransport", "connect"]
