"""Keyless-server audit: prove the serving process holds no key material.

Seabed's security argument (Section 3) needs the cloud half of the
system to be *keyless*: the server sees ciphertexts, DET/ORE tokens and
key-free sidecar payloads, never a :class:`~repro.crypto.keys.KeyChain`
or any scheme object derived from one.  :func:`audit_keyless` walks the
object graph reachable from a service (or any root object) and flags
every instance of a key-bearing class, mirroring how
:func:`repro.attacks.frequency.audit_zone_maps` audits the index layer.

The walk is deliberately *structural* -- dicts, sequences, sets,
instance ``__dict__``/``__slots__`` -- rather than ``gc.get_referents``
over classes and modules, which would chase module globals into
unrelated objects of the hosting process (e.g. a client session living
in the same test process).  What the audit covers is exactly the state
the service can reach from its own roots, which is what a compromised
server could exfiltrate.
"""

from __future__ import annotations

import types
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.crypto_factory import CryptoFactory
from repro.core.decryptor import DecryptionModule
from repro.core.encryptor import EncryptionModule
from repro.crypto.aes import Aes128
from repro.crypto.ashe import AsheScheme
from repro.crypto.det import DetScheme
from repro.crypto.keys import KeyChain
from repro.crypto.ore import OreScheme
from repro.crypto.paillier import PaillierKeyPair, PaillierScheme
from repro.crypto.prf import Prf
from repro.errors import SeabedError

#: Classes whose instances constitute key material.  Reaching any of
#: these from server-side state breaks the keyless invariant.
KEY_BEARING: tuple[type, ...] = (
    KeyChain,
    CryptoFactory,
    EncryptionModule,
    DecryptionModule,
    PaillierKeyPair,
    PaillierScheme,
    AsheScheme,
    DetScheme,
    OreScheme,
    Aes128,
    Prf,
)

#: Leaf types never descended into: either they hold no user-object
#: references, or (modules, functions, frames) they are code-layer
#: boundaries whose globals would drag in the whole interpreter.
_OPAQUE = (
    str,
    bytes,
    bytearray,
    memoryview,
    int,
    float,
    complex,
    bool,
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.FrameType,
    types.GeneratorType,
)


class KeylessAuditError(SeabedError):
    """The audited object graph reaches key material."""


@dataclass
class KeylessAuditResult:
    ok: bool
    objects_walked: int
    flagged: list[str] = field(default_factory=list)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise KeylessAuditError(str(self))

    def __str__(self) -> str:
        state = "keyless" if self.ok else f"{len(self.flagged)} key object(s)"
        detail = "" if self.ok else ": " + "; ".join(self.flagged[:5])
        return f"keyless audit: {self.objects_walked} objects walked -- {state}{detail}"


def _children(obj: Any) -> Iterator[tuple[str, Any]]:
    """(edge-label, child) pairs for one object: container elements and
    instance attributes.  Classes, modules and functions are boundaries,
    not children -- the audit checks state, not code."""
    if isinstance(obj, dict):
        for key, value in list(obj.items()):
            label = key if isinstance(key, str) else repr(key)
            yield f"[{label!r}]", key
            yield f"[{label!r}]", value
        return
    if isinstance(obj, (list, tuple, deque)):
        for index, value in enumerate(list(obj)):
            yield f"[{index}]", value
        return
    if isinstance(obj, (set, frozenset)):
        for value in list(obj):
            yield "{...}", value
        return
    inst = getattr(obj, "__dict__", None)
    if isinstance(inst, dict):
        for name, value in list(inst.items()):
            yield f".{name}", value
    for name in getattr(type(obj), "__slots__", ()) or ():
        if isinstance(name, str) and hasattr(obj, name):
            yield f".{name}", getattr(obj, name)


def audit_keyless(root: Any, *, max_objects: int = 1_000_000) -> KeylessAuditResult:
    """Walk every object reachable from ``root`` and flag key material.

    Returns a :class:`KeylessAuditResult`; callers wanting an exception
    use :meth:`KeylessAuditResult.raise_if_failed`.  ``max_objects``
    bounds the walk so a pathological graph cannot hang the audit --
    hitting the bound is reported as a failure (the invariant was not
    fully checked).
    """
    seen: set[int] = set()
    flagged: list[str] = []
    queue: deque[tuple[Any, str]] = deque([(root, "root")])
    walked = 0
    while queue:
        obj, path = queue.popleft()
        if isinstance(obj, type) or obj is None or isinstance(obj, _OPAQUE):
            continue
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        walked += 1
        if walked > max_objects:
            flagged.append(f"{path}: walk truncated at {max_objects} objects")
            break
        if isinstance(obj, KEY_BEARING):
            flagged.append(f"{path}: {type(obj).__name__}")
            continue  # no need to look inside confirmed key material
        for label, child in _children(obj):
            queue.append((child, path + label))
    return KeylessAuditResult(ok=not flagged, objects_walked=walked, flagged=flagged)
