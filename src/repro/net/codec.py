"""Length-prefixed binary wire codec for the Seabed service.

Frame layout (everything little-endian)::

    u32  frame length   (bytes after this field)
    4s   magic          b"SBNW"
    u16  wire version   (WIRE_VERSION; skew is rejected, like the store
                         manifest's version field)
    u32  envelope length
    ...  envelope       JSON: {"kind": str, "buffers": [len, ...],
                               "body": <packed value tree>}
    ...  buffers        raw bytes, concatenated in order

The envelope is a JSON tree in which every non-JSON-native value is a
tagged object (``{"!": tag, ...}``): tuples, dicts (whose keys need not
be strings), bytes, numpy arrays and scalars, and the registered request
/response dataclasses (:class:`~repro.core.server.ServerQuery`, filter
and aggregate ops, :class:`~repro.core.server.ServerResponse`,
:class:`~repro.engine.metrics.JobMetrics`...).  Bulk payloads -- bytes
and numpy buffers, i.e. the ciphertexts -- are *not* JSON-encoded: the
envelope stores an index into the raw buffer region, so ciphertext
batches and encrypted results ship as flat memory with a JSON envelope
for metadata only.

Malformed input never escapes as a raw ``struct``/``json``/``OSError``:
truncated frames, bad magic, version skew, unknown tags and oversized
lengths all raise :class:`~repro.errors.CodecError` (a
:class:`~repro.errors.TransportError`).
"""

from __future__ import annotations

import dataclasses
import json
import socket
import struct
from typing import Any

import numpy as np

from repro.core import server as srv
from repro.engine import metrics as em
from repro.engine.storage import decode_object_column, encode_object_column
from repro.errors import CodecError

MAGIC = b"SBNW"
WIRE_VERSION = 1

#: Upper bound on a single frame; a corrupt length prefix fails fast
#: instead of attempting a multi-gigabyte read.
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct("<4sHI")  # magic, version, envelope length

#: Dataclasses allowed on the wire, by class name.  Anything outside
#: this registry is rejected at encode *and* decode time, so a peer
#: cannot smuggle arbitrary object construction through the codec.
_DATACLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        srv.PlainCmp,
        srv.DetEq,
        srv.DetIn,
        srv.OreCmp,
        srv.FilterAnd,
        srv.FilterOr,
        srv.FilterNot,
        srv.AsheSum,
        srv.PlainAgg,
        srv.PaillierSum,
        srv.OreExtreme,
        srv.OreMedian,
        srv.ServerJoin,
        srv.ServerQuery,
        srv.ServerResponse,
        em.StageMetrics,
        em.JobMetrics,
    )
}


def _pack(value: Any, buffers: list[bytes]) -> Any:
    """Lower ``value`` to a JSON-safe tree, appending bulk payloads to
    ``buffers``."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):
        # Python's json round-trips arbitrary-precision ints (Paillier
        # ciphertexts) and non-finite floats natively.
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        buffers.append(bytes(value))
        return {"!": "b", "i": len(buffers) - 1}
    if isinstance(value, tuple):
        return {"!": "t", "v": [_pack(v, buffers) for v in value]}
    if isinstance(value, list):
        return [_pack(v, buffers) for v in value]
    if isinstance(value, dict):
        return {
            "!": "m",
            "v": [[_pack(k, buffers), _pack(v, buffers)] for k, v in value.items()],
        }
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            buffers.append(encode_object_column(value))
            return {"!": "no", "r": int(value.size), "i": len(buffers) - 1}
        buffers.append(np.ascontiguousarray(value).tobytes())
        return {
            "!": "nd",
            "d": value.dtype.str,
            "s": list(value.shape),
            "i": len(buffers) - 1,
        }
    if isinstance(value, np.generic):
        return {"!": "ns", "d": value.dtype.str, "v": value.item()}
    if dataclasses.is_dataclass(value) and type(value).__name__ in _DATACLASSES:
        return {
            "!": "d",
            "t": type(value).__name__,
            "f": {
                f.name: _pack(getattr(value, f.name), buffers)
                for f in dataclasses.fields(value)
            },
        }
    raise CodecError(f"cannot encode {type(value).__name__} on the wire")


def _unpack(tree: Any, buffers: list[memoryview]) -> Any:
    if tree is None or isinstance(tree, (bool, int, float, str)):
        return tree
    if isinstance(tree, list):
        return [_unpack(v, buffers) for v in tree]
    if not isinstance(tree, dict):
        raise CodecError(f"malformed envelope node of type {type(tree).__name__}")
    tag = tree.get("!")
    try:
        if tag == "b":
            return bytes(buffers[tree["i"]])
        if tag == "t":
            return tuple(_unpack(v, buffers) for v in tree["v"])
        if tag == "m":
            return {_unpack(k, buffers): _unpack(v, buffers) for k, v in tree["v"]}
        if tag == "nd":
            dtype = np.dtype(tree["d"])
            arr = np.frombuffer(buffers[tree["i"]], dtype=dtype)
            return arr.reshape(tree["s"]).copy()
        if tag == "no":
            return decode_object_column(bytes(buffers[tree["i"]]), tree["r"])
        if tag == "ns":
            return np.dtype(tree["d"]).type(tree["v"])
        if tag == "d":
            cls = _DATACLASSES.get(tree["t"])
            if cls is None:
                raise CodecError(f"unknown dataclass {tree['t']!r} on the wire")
            fields = {name: _unpack(v, buffers) for name, v in tree["f"].items()}
            known = {f.name for f in dataclasses.fields(cls)}
            if set(fields) - known:
                raise CodecError(
                    f"unexpected fields for {tree['t']}: {sorted(set(fields) - known)}"
                )
            return cls(**fields)
    except CodecError:
        raise
    except Exception as exc:  # noqa: BLE001 -- any malformed node is a codec error
        raise CodecError(f"malformed {tag!r} node: {exc}") from exc
    raise CodecError(f"unknown envelope tag {tag!r}")


def encode_frame(kind: str, body: Any) -> bytes:
    """Serialise one message to a complete frame (length prefix included)."""
    buffers: list[bytes] = []
    tree = _pack(body, buffers)
    envelope = json.dumps(
        {"kind": kind, "buffers": [len(b) for b in buffers], "body": tree},
        separators=(",", ":"),
    ).encode()
    payload = _HEADER.pack(MAGIC, WIRE_VERSION, len(envelope))
    frame = b"".join([payload, envelope, *buffers])
    if len(frame) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(frame)} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return struct.pack("<I", len(frame)) + frame


def decode_payload(payload: bytes | memoryview) -> tuple[str, Any]:
    """Decode a frame body (everything after the u32 length prefix)."""
    view = memoryview(payload)
    if len(view) < _HEADER.size:
        raise CodecError(f"truncated frame header ({len(view)} bytes)")
    magic, version, env_len = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {bytes(magic)!r}")
    if version != WIRE_VERSION:
        raise CodecError(
            f"wire version skew: peer speaks v{version}, this end v{WIRE_VERSION}"
        )
    if _HEADER.size + env_len > len(view):
        raise CodecError("truncated frame envelope")
    try:
        envelope = json.loads(bytes(view[_HEADER.size : _HEADER.size + env_len]))
        kind = envelope["kind"]
        lengths = envelope["buffers"]
        tree = envelope["body"]
    except CodecError:
        raise
    except Exception as exc:  # noqa: BLE001 -- malformed JSON/shape
        raise CodecError(f"malformed frame envelope: {exc}") from exc
    if not isinstance(kind, str) or not isinstance(lengths, list):
        raise CodecError("malformed frame envelope")
    buffers: list[memoryview] = []
    offset = _HEADER.size + env_len
    for length in lengths:
        if not isinstance(length, int) or length < 0 or offset + length > len(view):
            raise CodecError("truncated frame buffers")
        buffers.append(view[offset : offset + length])
        offset += length
    if offset != len(view):
        raise CodecError(f"{len(view) - offset} trailing bytes after frame buffers")
    return kind, _unpack(tree, buffers)


def decode_frame(frame: bytes) -> tuple[str, Any]:
    """Decode a complete frame as produced by :func:`encode_frame`."""
    if len(frame) < 4:
        raise CodecError(f"truncated frame ({len(frame)} bytes)")
    (length,) = struct.unpack_from("<I", frame, 0)
    if length != len(frame) - 4:
        raise CodecError(f"frame length {length} != {len(frame) - 4} available bytes")
    return decode_payload(memoryview(frame)[4:])


def pack_table(table: Any) -> dict[str, Any]:
    """Wire form of an in-memory ciphertext batch: name plus raw
    partition columns.  Store refs and zone maps never travel -- appended
    batches are in-memory by construction, and the receiving end derives
    its own index when it persists the batch."""
    return {
        "name": table.name,
        "partitions": [
            {"start_id": p.start_id, "columns": dict(p.columns)}
            for p in table.partitions
        ],
    }


def unpack_table(data: dict[str, Any]) -> Any:
    """Rebuild a :class:`~repro.engine.table.Table` from wire form."""
    from repro.engine.table import Partition, Table

    try:
        return Table(
            data["name"],
            [
                Partition(columns=dict(p["columns"]), start_id=int(p["start_id"]))
                for p in data["partitions"]
            ],
        )
    except CodecError:
        raise
    except Exception as exc:  # noqa: BLE001 -- malformed batch is a codec error
        raise CodecError(f"malformed table batch on the wire: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise CodecError(f"connection closed mid-frame ({n - remaining}/{n} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[str, Any]:
    """Read and decode one frame from a blocking socket."""
    (length,) = struct.unpack("<I", _recv_exact(sock, 4))
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})")
    return decode_payload(_recv_exact(sock, length))


def write_frame(sock: socket.socket, kind: str, body: Any) -> None:
    """Encode and send one frame on a blocking socket."""
    sock.sendall(encode_frame(kind, body))
