"""Result recording for the benchmark harness.

Each benchmark writes its rendered table both to stdout and to
``results/<name>.txt`` under the repository root, so EXPERIMENTS.md can
reference stable artifacts and reruns can be diffed.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np


def results_dir() -> Path:
    """``results/`` next to the package's repository root (cwd-based when
    the package is installed elsewhere)."""
    root = Path(os.environ.get("SEABED_RESULTS_DIR", Path.cwd() / "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


class ResultSink:
    """Prints a rendered experiment table and persists it."""

    def __init__(self, name: str):
        self.name = name
        self._chunks: list[str] = []

    def emit(self, text: str) -> None:
        self._chunks.append(text)
        print(f"\n{text}")

    def close(self) -> Path:
        path = results_dir() / f"{self.name}.txt"
        path.write_text("\n\n".join(self._chunks) + "\n")
        return path

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def cdf_points(values, quantiles=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0)) -> list[tuple[float, float]]:
    """(quantile, value) pairs for a response-time CDF (Figure 10a)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return []
    return [(q, float(np.quantile(arr, q))) for q in quantiles]
