"""Plain-text table rendering for benchmark output.

Every benchmark prints its reproduction of a paper table or figure as an
aligned text table so `pytest benchmarks/ --benchmark-only -s` output can
be compared against the paper directly, and EXPERIMENTS.md can embed the
same renderings.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned text table with a rule under the header."""
    rendered = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
