"""Benchmark-harness support: table rendering and result recording."""

from repro.bench.harness import ResultSink, cdf_points
from repro.bench.tables import format_table

__all__ = ["ResultSink", "cdf_points", "format_table"]
