"""Execution substrate: a simulated-cluster columnar engine.

The paper's prototype runs on Apache Spark over an Azure HDInsight cluster
(tens of 16-core nodes).  This package replaces that substrate with a
deliberately transparent equivalent:

- :mod:`repro.engine.table` -- partitioned columnar tables (the "HDFS +
  cached RDD" role), with contiguous row IDs per partition.
- :mod:`repro.engine.cluster` -- a :class:`SimulatedCluster` that executes
  per-partition tasks for real (measuring wall time) and then schedules the
  measured durations onto N simulated cores to obtain the cluster
  makespan; a bandwidth/latency model covers shuffle and client transfer.
- :mod:`repro.engine.backends` -- pluggable execution backends (serial /
  threads / processes) that decide how those task bodies actually run on
  the host, turning the simulated cluster into a genuinely parallel one
  while leaving the simulated schedule untouched.
- :mod:`repro.engine.metrics` -- per-stage and per-job timing accounting.
- :mod:`repro.engine.storage` -- table (de)serialisation and the disk /
  memory accounting behind the paper's Table 5.
- :mod:`repro.engine.store` -- the persistent columnar partition store:
  encrypted columns as raw little-endian buffers on disk, loaded back as
  read-only memory maps and dispatched to workers as ``(path, index)``
  refs instead of pickled partitions.
- :mod:`repro.engine.rdd` -- a small row-oriented RDD API (map / filter /
  reduce / reduceByKey) mirroring the Spark API targeted by the paper's
  query translator (Table 2).

The simulation preserves the *shape* of the paper's scaling experiments
(latency vs rows, vs cores, vs selectivity) because every code path that
costs time in the paper -- per-partition aggregation, ID-list encoding,
worker-side compression, shuffle volume, driver merge -- executes for real
here; only the placement of tasks onto cores is simulated.
"""

from repro.engine.backends import ExecutionBackend, make_backend
from repro.engine.cluster import ClusterConfig, SimulatedCluster
from repro.engine.metrics import JobMetrics, StageMetrics
from repro.engine.rdd import RDD
from repro.engine.store import PartitionRef, open_store, resolve_partition, write_store
from repro.engine.table import Partition, Table

__all__ = [
    "ClusterConfig",
    "ExecutionBackend",
    "JobMetrics",
    "Partition",
    "PartitionRef",
    "RDD",
    "SimulatedCluster",
    "StageMetrics",
    "Table",
    "make_backend",
    "open_store",
    "resolve_partition",
    "write_store",
]
