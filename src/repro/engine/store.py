"""Persistent columnar partition store with generational appends.

The paper's deployment model (Sections 5-6) is a long-lived encrypted
dataset living in untrusted cloud storage -- and the whole argument for
ASHE over Paillier (Section 3.1) is that ad-analytics data arrives
*continuously*, so the store must absorb streaming batches without
re-encrypting what is already there.  This module is that durable layer
for the simulated cluster.

Layout of one store directory::

    <store>/
      manifest.json          # format version, generation log, spans
      part-00000/            # generation 1: the initial bulk upload
        revenue__ashe.bin    # raw little-endian numpy buffer
        country__det.bin
        ...
      part-00001/...
      gen-000002/            # one directory per appended generation
        part-00000/...
      gen-000003/...

Every numeric column is written as its raw C-contiguous little-endian
buffer and loaded back as a read-only :class:`numpy.memmap` view, so a
partition larger than RAM streams from the OS page cache.  Paillier
ciphertext columns (``object`` dtype big-ints) reuse the varint framing
of :mod:`repro.engine.storage` and load eagerly.

**Generations.**  The manifest (format version 2) is a log of
*generations*: the initial bulk write is generation 1 and every
:func:`append_store` adds one more, bumping a monotonic generation
counter.  Appends are atomic -- the batch is staged in a temporary
directory, renamed into place, and only then does an ``os.replace`` of
the manifest publish it -- so a writer killed mid-append leaves the
store exactly at its previous generation.  :func:`compact_store` merges
runs of small append generations back into full-size partitions so scan
parallelism stays healthy under a drip of small batches.  Version-1
manifests (the pre-generational format) are still read, normalised as a
single generation, and upgraded in place by the first append.

**Snapshot consistency.**  :class:`PartitionRef` -- the tiny picklable
descriptor stage dispatch ships instead of column payloads -- carries
the generation counter it was created at.  The per-process reader cache
(:func:`resolve_partition` / :func:`reader_at`) is keyed on ``(path,
generation)``, so a worker in any execution backend resolves a ref
against the exact snapshot its query planned over: generations are
append-only, which lets an older snapshot be reconstructed from a newer
manifest, and a query therefore sees the store wholly pre- or wholly
post-append, never torn.  Only compaction retires old snapshots; a ref
from before a compaction fails with a clear :class:`StorageError`
instead of silently reading reshuffled partitions.

**Zone maps.**  Format version 3 attaches per-partition zone-map
statistics to every generation entry (:mod:`repro.index.zonemap`): ORE
min/max ciphertexts, DET token sets or bloom filters, plain min/max,
and row counts -- everything derivable from the ciphertext columns the
server already stores, nothing more.  ``write_store``, ``append_store``
and ``compact_store`` all emit stats for the partitions they write;
older stores open unchanged and are backfilled lazily by their first
mutation (or eagerly by :func:`rebuild_stats`).  The server's pruning
planner consults these through :attr:`Table.zone_maps`.

Everything stored here is public material: ciphertext columns, row IDs,
and dtype bookkeeping.  Client-side state (plaintext schema,
dictionaries, key-check values, and the row-count watermark that acts as
the append *commit record*) is persisted separately by
:mod:`repro.core.persistence`.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.engine.storage import (
    atomic_write_json,
    decode_object_column,
    encode_object_column,
    fsync_dir,
)
from repro.engine.table import Partition, Table
from repro.errors import StorageError
from repro.idlist.codec import decode_id_spans, encode_id_spans, encode_span_groups
from repro.index.zonemap import build_partition_stats, stats_summary

FORMAT_NAME = "seabed-store"
FORMAT_VERSION = 3
#: Manifest versions this build can read (v1 = the pre-generational
#: single-shot format, normalised to one generation on load; v2 = the
#: generation log without zone-map statistics, which are backfilled
#: lazily by the store's first mutation or by :func:`rebuild_stats`).
READABLE_VERSIONS = (1, 2, 3)
MANIFEST_NAME = "manifest.json"
FIRST_GENERATION = 1

#: Crash-injection hook for the crash-safety suite: when this variable
#: names one of the labelled points inside append/compact, the process
#: dies there as abruptly as a killed writer would.
CRASH_POINT_ENV = "SEABED_STORE_CRASH_POINT"

#: numpy dtype name -> on-disk little-endian spec (the manifest records
#: the spec, so byte order is explicit regardless of the writing host).
_DTYPE_SPECS: dict[str, str] = {
    "int64": "<i8",
    "uint64": "<u8",
    "float64": "<f8",
    "bool": "|b1",
    "object": "object",
}
_SPEC_DTYPES = {v: k for k, v in _DTYPE_SPECS.items()}


@dataclass(frozen=True)
class PartitionRef:
    """Picklable handle to one stored partition: what stage dispatch ships.

    ``generation`` pins the snapshot the ref belongs to; ``index`` is the
    partition's position in that snapshot's flattened partition list;
    ``store_id`` is the identity of the store that minted the ref, so a
    ref from a store that was wholesale *replaced* at the same path fails
    loudly instead of reading the replacement's rows.  ``None`` values
    (legacy refs) resolve against the store's current state.
    """

    path: str
    index: int
    generation: int | None = None
    store_id: str | None = None


def _partition_dir(index: int) -> str:
    return f"part-{index:05d}"


def _generation_dir(gen_id: int) -> str:
    return f"gen-{gen_id:06d}"


def _column_filename(name: str) -> str:
    if not name or name in (".", "..") or os.sep in name or "\x00" in name:
        raise StorageError(f"column name {name!r} is not storable")
    return f"{name}.bin"


def _maybe_crash(point: str) -> None:
    if os.environ.get(CRASH_POINT_ENV) == point:  # pragma: no cover - dies
        os._exit(70)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _column_spec(name: str, arr: np.ndarray) -> dict:
    dtype_name = "object" if arr.dtype == object else arr.dtype.name
    spec = _DTYPE_SPECS.get(dtype_name)
    if spec is None:
        raise StorageError(
            f"column {name!r} has unsupported dtype {arr.dtype} "
            f"(storable: {sorted(_DTYPE_SPECS)})"
        )
    if arr.ndim not in (1, 2):
        raise StorageError(f"column {name!r} has unsupported ndim {arr.ndim}")
    return {
        "dtype": spec,
        "ndim": int(arr.ndim),
        "width": 1 if arr.ndim == 1 else int(arr.shape[1]),
    }


def _column_specs(table: Table, column_meta: dict[str, str] | None) -> dict[str, dict]:
    if not table.partitions:
        raise StorageError(f"table {table.name!r} has no partitions to store")
    columns: dict[str, dict] = {}
    for name in table.column_names:
        columns[name] = _column_spec(name, table.partitions[0].column(name))
        if column_meta and name in column_meta:
            columns[name]["enc"] = column_meta[name]
    return columns


def _write_partition_files(
    part_dir: str, columns: dict[str, dict], part: Partition
) -> dict[str, int]:
    """Write one partition's column files; returns per-file byte counts.

    Every file is fsynced before it is counted: the manifest (and then
    the sidecar watermark) will claim these bytes durable, so they must
    actually reach the platter before that commit record does.
    """
    os.makedirs(part_dir, exist_ok=True)
    files: dict[str, int] = {}
    for name, spec in columns.items():
        arr = part.column(name)
        actual = _column_spec(name, arr)
        if (actual["dtype"], actual["width"]) != (spec["dtype"], spec["width"]):
            raise StorageError(
                f"column {name!r} changes dtype/shape across partitions"
            )
        target = os.path.join(part_dir, _column_filename(name))
        with open(target, "wb") as fh:
            if spec["dtype"] == "object":
                payload = encode_object_column(arr)
                fh.write(payload)
                files[name] = len(payload)
            else:
                buf = np.ascontiguousarray(arr, dtype=np.dtype(spec["dtype"]))
                buf.tofile(fh)
                files[name] = int(buf.nbytes)
            fh.flush()
            os.fsync(fh.fileno())
    fsync_dir(part_dir)
    return files


def _generation_entry(
    gen_id: int, dir_name: str, table: Table, partitions: list[dict]
) -> dict:
    starts = np.asarray([p.start_id for p in table.partitions], dtype=np.uint64)
    counts = np.asarray([p.nrows for p in table.partitions], dtype=np.uint64)
    return {
        "id": gen_id,
        "dir": dir_name,
        "num_rows": int(counts.sum()),
        "spans_hex": encode_id_spans(starts, counts).hex(),
        "partitions": partitions,
    }


def _write_manifest(path: str, manifest: dict) -> None:
    """Atomically publish ``manifest`` (temp file + fsync + replace +
    directory fsync).  The replace is the visibility point of every store
    mutation -- readers either see the old manifest or the new one, never
    a partial write."""
    atomic_write_json(os.path.join(path, MANIFEST_NAME), manifest)


def write_store(
    table: Table,
    path: str | os.PathLike,
    column_meta: dict[str, str] | None = None,
    overwrite: bool = False,
) -> str:
    """Persist ``table`` under ``path``; returns the absolute store path.

    This is the initial bulk write: the table becomes generation 1 (its
    partitions live at the store root, which is also the layout a
    version-1 manifest describes).  ``column_meta`` attaches one opaque
    string per column to the manifest (the session records each physical
    column's encryption class there).  An existing store is refused
    unless ``overwrite=True``, in which case its partition directories,
    generation directories and manifest are replaced.
    """
    path = os.path.abspath(os.fspath(path))
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        if not overwrite:
            raise StorageError(
                f"store already exists at {path!r}; pass overwrite=True to replace"
            )
        _evict_cached(path)
        for entry in os.listdir(path):
            if (
                entry == MANIFEST_NAME
                or entry.startswith("part-")
                or entry.startswith("gen-")
            ):
                target = os.path.join(path, entry)
                shutil.rmtree(target) if os.path.isdir(target) else os.remove(target)
    os.makedirs(path, exist_ok=True)

    columns = _column_specs(table, column_meta)
    partitions = []
    for index, part in enumerate(table.partitions):
        part_dir = os.path.join(path, _partition_dir(index))
        files = _write_partition_files(part_dir, columns, part)
        partitions.append({
            "dir": _partition_dir(index),
            "files": files,
            "stats": build_partition_stats(part, columns),
        })

    generation = _generation_entry(FIRST_GENERATION, "", table, partitions)
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "table": table.name,
        # Random identity: preserved by appends/compaction, fresh on every
        # rewrite, so reader caches can tell "the same store advanced"
        # from "a different store replaced this path".
        "store_id": os.urandom(8).hex(),
        "generation": FIRST_GENERATION,
        "num_rows": generation["num_rows"],
        "columns": columns,
        "generations": [generation],
    }
    _write_manifest(path, manifest)
    return path


# ---------------------------------------------------------------------------
# Manifest reading / normalisation
# ---------------------------------------------------------------------------


def _read_manifest(path: str) -> dict:
    """Parse and validate the manifest, normalising v1 to the v2 shape."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise StorageError(f"no partition store at {path!r}") from None
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt store manifest at {path!r}: {exc}") from None
    if manifest.get("format") != FORMAT_NAME:
        raise StorageError(f"{path!r} is not a {FORMAT_NAME} directory")
    version = manifest.get("version")
    if version not in READABLE_VERSIONS:
        raise StorageError(
            f"store at {path!r} has format version {version!r}; "
            f"this build reads versions {list(READABLE_VERSIONS)}"
        )
    if version == 1:
        # v1: a flat partition list with one top-level span payload --
        # exactly a single generation at the store root.  v1 stores have
        # no identity; the first mutation assigns one.
        manifest = {
            "format": manifest["format"],
            "version": FORMAT_VERSION,
            "table": manifest["table"],
            "store_id": None,
            "generation": FIRST_GENERATION,
            "num_rows": int(manifest["num_rows"]),
            "columns": manifest["columns"],
            "generations": [{
                "id": FIRST_GENERATION,
                "dir": "",
                "num_rows": int(manifest["num_rows"]),
                "spans_hex": manifest["spans_hex"],
                "partitions": manifest["partitions"],
            }],
        }
    else:
        manifest.setdefault("store_id", None)
        # v2 -> v3 is purely additive (per-partition "stats" keys), so
        # normalising the version here means any mutation republishes at
        # the current format -- with the stats backfilled first.
        manifest["version"] = FORMAT_VERSION
    return manifest


def _store_end_id(manifest: dict) -> int:
    """One past the last row ID currently in the store."""
    last = manifest["generations"][-1]
    starts, counts = decode_id_spans(bytes.fromhex(last["spans_hex"]))
    if starts.size == 0:
        raise StorageError("store manifest holds an empty generation")
    return int(starts[-1]) + int(counts[-1])


def store_num_rows(path: str | os.PathLike) -> int:
    """Total rows the store currently holds (across all generations)."""
    return int(_read_manifest(os.path.abspath(os.fspath(path)))["num_rows"])


def _sweep_stale_tmp(path: str) -> None:
    """Remove staging leftovers from writers that died before renaming."""
    for entry in os.listdir(path):
        if entry.endswith(".tmp") and entry.startswith(("gen-", MANIFEST_NAME)):
            target = os.path.join(path, entry)
            shutil.rmtree(target) if os.path.isdir(target) else os.remove(target)


def _sweep_unreferenced(path: str, manifest: dict) -> None:
    """Remove partition/generation directories no generation references.

    A writer that died between publishing a compacted (or truncated)
    manifest and deleting the retired directories leaks them -- the
    manifest no longer names them, so nothing else ever would.  Writers
    call this after every successful publish.  Safe against concurrent
    readers: an unreferenced directory can only belong to a snapshot the
    manifest already retired, which new resolutions refuse anyway.
    """
    referenced = set()
    for gen in manifest["generations"]:
        if gen["dir"]:
            referenced.add(gen["dir"])
        for part in gen["partitions"]:
            referenced.add(part["dir"].split("/", 1)[0])
    for entry in os.listdir(path):
        if entry.endswith(".tmp"):
            continue  # staging: _sweep_stale_tmp's concern
        if entry.startswith(("part-", "gen-")) and entry not in referenced:
            shutil.rmtree(os.path.join(path, entry), ignore_errors=True)


def _remove_generation_dirs(path: str, entries: list[dict]) -> None:
    """Delete the directories of retired generation entries.

    Root-dwelling generations (``dir == ""``, i.e. generation 1) have
    their partition directories removed individually.  In-flight readers
    holding open maps keep working (POSIX keeps unlinked bytes readable);
    *new* resolutions of retired generations fail at the manifest level
    with a clear error instead.
    """
    for gen in entries:
        if gen["dir"]:
            shutil.rmtree(os.path.join(path, gen["dir"]), ignore_errors=True)
        else:
            for part in gen["partitions"]:
                shutil.rmtree(os.path.join(path, part["dir"]), ignore_errors=True)


def _ensure_stats(path: str, manifest: dict) -> bool:
    """Backfill zone-map statistics for partitions that predate format
    version 3 (lazy upgrade: runs on the store's first mutation, and
    eagerly via :func:`rebuild_stats`).

    Mutates ``manifest`` in place; returns True when anything was
    computed.  Existing stats are left untouched -- they are
    deterministic functions of immutable partition files.
    """
    entries = [
        part for gen in manifest["generations"] for part in gen["partitions"]
    ]
    if all("stats" in part for part in entries):
        return False
    snapshot = StoreReader(path)
    if snapshot.num_partitions != len(entries):  # pragma: no cover - defensive
        raise StorageError(
            f"store at {path!r}: manifest lists {len(entries)} partitions "
            f"but the current snapshot resolves {snapshot.num_partitions}"
        )
    for index, part in enumerate(entries):
        if "stats" not in part:
            part["stats"] = build_partition_stats(
                snapshot.partition(index), manifest["columns"]
            )
            snapshot.release(index)
    return True


def _check_append_columns(manifest: dict, columns: dict[str, dict]) -> None:
    stored = manifest["columns"]
    if set(stored) != set(columns):
        raise StorageError(
            f"append batch columns {sorted(columns)} do not match the "
            f"store's {sorted(stored)}"
        )
    for name, spec in columns.items():
        have = stored[name]
        if (spec["dtype"], spec["ndim"], spec["width"]) != (
            have["dtype"], have["ndim"], have["width"]
        ):
            raise StorageError(
                f"append batch column {name!r} has spec {spec}, "
                f"store expects {have}"
            )


# ---------------------------------------------------------------------------
# Appending and truncation
# ---------------------------------------------------------------------------


def append_store(
    table: Table,
    path: str | os.PathLike,
    column_meta: dict[str, str] | None = None,
) -> int:
    """Append ``table`` (one encrypted batch) as a new generation.

    The batch's ``base_id`` must continue the store's row-ID sequence
    exactly (the high-water mark -- what keeps ASHE pads telescoping and
    ID lists range-compressible).  The write is atomic: column files are
    staged under ``gen-NNNNNN.tmp``, renamed into place, and the updated
    manifest is published last via ``os.replace``; a writer killed at any
    point leaves the previous generation fully intact.  Appending to a
    version-1 store upgrades its manifest to version 2.

    Returns the new generation id.
    """
    path = os.path.abspath(os.fspath(path))
    manifest = _read_manifest(path)
    if manifest["table"] != table.name:
        raise StorageError(
            f"store at {path!r} holds table {manifest['table']!r}, "
            f"not {table.name!r}"
        )
    columns = _column_specs(table, column_meta)
    _check_append_columns(manifest, columns)
    end_id = _store_end_id(manifest)
    if table.base_id != end_id:
        raise StorageError(
            f"append batch starts at row ID {table.base_id} but the store "
            f"at {path!r} ends at {end_id}; batches must continue the "
            "row-ID sequence (truncate uncommitted generations first?)"
        )

    if manifest.get("store_id") is None:
        manifest["store_id"] = os.urandom(8).hex()  # v1 upgrade
    # First-mutation upgrade: generations written before format v3 gain
    # their zone-map stats now, in the same manifest publish as the batch.
    _ensure_stats(path, manifest)
    gen_id = int(manifest["generation"]) + 1
    dir_name = _generation_dir(gen_id)
    staging = os.path.join(path, dir_name + ".tmp")
    if os.path.exists(staging):
        shutil.rmtree(staging)
    partitions = []
    for index, part in enumerate(table.partitions):
        part_dir = os.path.join(staging, _partition_dir(index))
        files = _write_partition_files(part_dir, columns, part)
        partitions.append({
            "dir": f"{dir_name}/{_partition_dir(index)}",
            "files": files,
            "stats": build_partition_stats(part, columns),
        })

    _maybe_crash("append:before-rename")
    final = os.path.join(path, dir_name)
    if os.path.exists(final):
        shutil.rmtree(final)  # stray from an earlier crashed writer
    os.rename(staging, final)
    fsync_dir(path)
    _maybe_crash("append:after-rename")

    manifest["generations"].append(_generation_entry(gen_id, dir_name, table, partitions))
    manifest["generation"] = gen_id
    manifest["num_rows"] = int(manifest["num_rows"]) + table.num_rows
    _write_manifest(path, manifest)
    _maybe_crash("append:after-manifest")
    _sweep_stale_tmp(path)
    _sweep_unreferenced(path, manifest)
    return gen_id


def snapshot_generation(path: str | os.PathLike, num_rows: int) -> int | None:
    """The generation counter whose snapshot holds exactly ``num_rows``.

    Walks generation-list prefixes (generations tile the row-ID space in
    list order) and returns the counter value whose ``id <=`` filter
    reproduces that prefix, or ``None`` when no prefix matches -- e.g.
    the rows fall inside a generation, or compaction merged the boundary
    away.
    """
    manifest = _read_manifest(os.path.abspath(os.fspath(path)))
    gens = manifest["generations"]
    total = 0
    for i, gen in enumerate(gens):
        total += int(gen["num_rows"])
        if total == num_rows:
            counter = max(int(e["id"]) for e in gens[: i + 1])
            if all(int(e["id"]) > counter for e in gens[i + 1 :]):
                return counter
            return None
        if total > num_rows:
            return None
    return None


def truncate_store(path: str | os.PathLike, num_rows: int) -> int:
    """Drop whole generations until the store holds ``num_rows`` rows.

    This is the *rollback* half of the append commit protocol: an append
    publishes its generation in the manifest first and commits by
    updating the client-state sidecar's row watermark, so a writer that
    died in between leaves an uncommitted generation the next writer
    rolls back here.  ``num_rows`` must land exactly on a generation
    boundary.  The generation counter is *not* rewound -- retired ids
    are never reused, so stale refs can always be detected.

    Returns the number of generations dropped (0 when already there).
    """
    path = os.path.abspath(os.fspath(path))
    manifest = _read_manifest(path)
    if manifest.get("store_id") is None:
        manifest["store_id"] = os.urandom(8).hex()  # v1 upgrade
    if int(manifest["num_rows"]) == num_rows:
        return 0
    _ensure_stats(path, manifest)  # pre-v3 upgrade rides this mutation
    keep: list[dict] = []
    total = 0
    for gen in manifest["generations"]:
        if total == num_rows:
            break
        total += int(gen["num_rows"])
        keep.append(gen)
    if total != num_rows or not keep:
        raise StorageError(
            f"cannot truncate store at {path!r} to {num_rows} rows: no "
            "generation boundary there"
        )
    dropped = manifest["generations"][len(keep):]
    manifest["generations"] = keep
    manifest["num_rows"] = num_rows
    _write_manifest(path, manifest)
    _remove_generation_dirs(path, dropped)
    _sweep_stale_tmp(path)
    _sweep_unreferenced(path, manifest)
    return len(dropped)


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------


def _gen_mean_partition_rows(gen: dict) -> float:
    return int(gen["num_rows"]) / max(len(gen["partitions"]), 1)


def _source_span_groups(
    source_spans: list[tuple[int, int]], out_spans: list[tuple[int, int]]
) -> list[list[tuple[int, int]]]:
    """Per output partition span, the source spans it absorbed."""
    groups: list[list[tuple[int, int]]] = []
    for lo, count in out_spans:
        hi = lo + count
        group = []
        for start, scount in source_spans:
            s, e = max(start, lo), min(start + scount, hi)
            if s < e:
                group.append((s, e - s))
        groups.append(group)
    return groups


def compact_store(
    path: str | os.PathLike, target_rows: int | None = None
) -> dict | None:
    """Merge runs of small append generations into full-size partitions.

    A store fed by streaming appends accumulates generations whose
    partitions are far smaller than the initial upload's, which inflates
    per-task scheduling cost and starves scan parallelism.  This rewrites
    every maximal run of *consecutive* small generations (mean partition
    rows below ``target_rows``, which defaults to the store's own
    largest mean -- its notion of full-size) into one new generation of
    ``target_rows``-sized partitions.  Consecutiveness matters: row IDs
    are contiguous in generation order, so only neighbouring generations
    can merge.

    The rewrite follows the same atomic protocol as appends (stage,
    rename, manifest replace); the merged entry records which generation
    ids it absorbed (``compacted_from``) and, per output partition, the
    source row-ID spans it covers (``source_spans_hex``, the span-group
    codec).  Retired generation directories are deleted after the
    manifest is published -- snapshots older than the compaction are no
    longer reconstructable, and refs pinned to them fail loudly.

    Returns a stats dict, or ``None`` when nothing needed compacting.
    """
    path = os.path.abspath(os.fspath(path))
    manifest = _read_manifest(path)
    if manifest.get("store_id") is None:
        manifest["store_id"] = os.urandom(8).hex()  # v1 upgrade
    gens = manifest["generations"]
    if target_rows is None:
        target_rows = max(1, math.ceil(max(_gen_mean_partition_rows(g) for g in gens)))

    # Maximal runs of consecutive small generations worth rewriting.
    runs: list[list[int]] = []
    current: list[int] = []
    for i, gen in enumerate(gens):
        if _gen_mean_partition_rows(gen) < target_rows:
            current.append(i)
        else:
            if current:
                runs.append(current)
            current = []
    if current:
        runs.append(current)

    def worth_it(run: list[int]) -> bool:
        rows = sum(int(gens[i]["num_rows"]) for i in run)
        parts = sum(len(gens[i]["partitions"]) for i in run)
        return len(run) > 1 or math.ceil(rows / target_rows) < parts

    runs = [run for run in runs if worth_it(run)]
    # Pre-v3 generations gain their zone-map stats as part of this
    # mutation (published below with the rewrite, or on their own when
    # there is nothing to merge but the upgrade is still due).
    backfilled = _ensure_stats(path, manifest)
    if not runs:
        if backfilled:
            _write_manifest(path, manifest)
        # Nothing to merge -- but a previous writer may have died between
        # its manifest publish and its directory cleanup, so sweep.
        _sweep_stale_tmp(path)
        _sweep_unreferenced(path, manifest)
        return None

    # Source data resolves through the current snapshot's mmaps; the
    # rewrite streams one *output* partition at a time (and releases
    # fully consumed sources as it goes), so compaction memory is
    # bounded by target_rows x columns even when a run spans a table
    # larger than RAM.
    snapshot = StoreReader(path)
    parts_before = snapshot.num_partitions
    names = snapshot.column_names
    counter = int(manifest["generation"])
    new_generations: list[dict] = list(gens)
    staged: list[tuple[str, str]] = []  # (staging dir, final dir)
    replaced: list[dict] = []
    offsets = np.concatenate([[0], np.cumsum([len(g["partitions"]) for g in gens])])

    for run in runs:
        run_gens = [gens[i] for i in run]
        indices = list(range(int(offsets[run[0]]), int(offsets[run[-1] + 1])))
        source_spans: list[tuple[int, int]] = []
        for gen in run_gens:
            starts, counts = decode_id_spans(bytes.fromhex(gen["spans_hex"]))
            source_spans.extend(zip(starts.tolist(), counts.tolist()))
        rows = sum(count for _, count in source_spans)
        base = source_spans[0][0]
        nparts = max(1, math.ceil(rows / target_rows))
        bounds = np.linspace(0, rows, nparts + 1).astype(np.int64)

        counter += 1
        dir_name = _generation_dir(counter)
        staging = os.path.join(path, dir_name + ".tmp")
        if os.path.exists(staging):
            shutil.rmtree(staging)
        partitions = []
        out_spans: list[tuple[int, int]] = []
        for out in range(nparts):
            lo, hi = int(bounds[out]), int(bounds[out + 1])
            pieces: dict[str, list[np.ndarray]] = {name: [] for name in names}
            offset = 0
            for index, (_, scount) in zip(indices, source_spans):
                s, e = max(lo, offset), min(hi, offset + scount)
                if s < e:
                    part = snapshot.partition(index)
                    for name in names:
                        pieces[name].append(
                            part.column(name)[s - offset : e - offset]
                        )
                    if offset + scount <= hi:
                        # Later output partitions start at hi, so this
                        # source is fully consumed: drop its maps now.
                        snapshot.release(index)
                offset += scount
            out_part = Partition(
                columns={n: np.concatenate(p) for n, p in pieces.items()},
                start_id=base + lo,
            )
            files = _write_partition_files(
                os.path.join(staging, _partition_dir(out)),
                manifest["columns"],
                out_part,
            )
            partitions.append({
                "dir": f"{dir_name}/{_partition_dir(out)}",
                "files": files,
                "stats": build_partition_stats(out_part, manifest["columns"]),
            })
            out_spans.append((base + lo, hi - lo))
            del out_part, pieces

        entry = {
            "id": counter,
            "dir": dir_name,
            "num_rows": rows,
            "spans_hex": encode_id_spans(
                np.asarray([s for s, _ in out_spans], dtype=np.uint64),
                np.asarray([c for _, c in out_spans], dtype=np.uint64),
            ).hex(),
            "partitions": partitions,
            "compacted_from": [int(g["id"]) for g in run_gens],
            "source_spans_hex": encode_span_groups(
                _source_span_groups(source_spans, out_spans)
            ).hex(),
        }
        # Replace the run (in ID-space order) with the merged entry.
        pos = new_generations.index(run_gens[0])
        for g in run_gens:
            new_generations.remove(g)
        new_generations.insert(pos, entry)
        replaced.extend(run_gens)
        staged.append((staging, os.path.join(path, dir_name)))

    _maybe_crash("compact:before-rename")
    for staging, final in staged:
        if os.path.exists(final):
            shutil.rmtree(final)
        os.rename(staging, final)
    fsync_dir(path)
    _maybe_crash("compact:after-rename")
    manifest["generations"] = new_generations
    manifest["generation"] = counter
    _write_manifest(path, manifest)
    _maybe_crash("compact:after-manifest")
    _remove_generation_dirs(path, replaced)
    _sweep_stale_tmp(path)
    _sweep_unreferenced(path, manifest)
    # Compaction retires every older snapshot: evict this process's
    # cached readers for them so a stale ref fails with the manifest's
    # clear "compacted away" error instead of a missing-file one.
    # (Other processes have no cache entry and hit that check directly.)
    _evict_cached_below(path, counter)
    return {
        "merged_runs": len(runs),
        "generations_before": len(gens),
        "generations_after": len(new_generations),
        "partitions_before": parts_before,
        "partitions_after": sum(len(g["partitions"]) for g in new_generations),
        "target_rows": int(target_rows),
        "generation": counter,
    }


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class StoreReader:
    """One opened store snapshot: parsed manifest plus lazily mapped
    partitions.

    ``generation`` selects the snapshot: only generations with ``id <=
    generation`` are visible, which reconstructs any pre-append state
    from the current (append-only) manifest.  ``None`` reads the latest.
    """

    def __init__(self, path: str | os.PathLike, generation: int | None = None):
        self.path = os.path.abspath(os.fspath(path))
        # Stat before parse: if the manifest is replaced in between, the
        # recorded signature is stale and the cache revalidates -- the
        # safe direction.
        self.signature = _manifest_signature(os.path.join(self.path, MANIFEST_NAME))
        manifest = _read_manifest(self.path)
        self.manifest = manifest
        self.table_name: str = manifest["table"]
        self.store_id: str | None = manifest.get("store_id")
        self.current_generation: int = int(manifest["generation"])
        self.generation: int = (
            self.current_generation if generation is None else int(generation)
        )
        if self.generation > self.current_generation:
            raise StorageError(
                f"store at {self.path!r} has no generation "
                f"{self.generation} yet (manifest is at "
                f"{self.current_generation}); the ref is stale or the "
                "store was replaced"
            )
        included = [
            g for g in manifest["generations"] if int(g["id"]) <= self.generation
        ]
        # A generation *above* the requested snapshot that absorbed
        # generations at or below it means the snapshot's own files are
        # gone: compaction retires old snapshots, and silently serving
        # the remaining prefix would be a different (smaller) snapshot.
        for gen in manifest["generations"]:
            if int(gen["id"]) <= self.generation:
                continue
            if any(int(m) <= self.generation for m in gen.get("compacted_from", [])):
                raise StorageError(
                    f"store at {self.path!r}: the snapshot at generation "
                    f"{self.generation} was compacted away; re-open the table"
                )
        if not included:
            raise StorageError(
                f"store at {self.path!r} has no snapshot at generation "
                f"{self.generation} (compacted away?)"
            )
        self.generations = included
        self._entries: list[dict] = []
        starts_all: list[int] = []
        counts_all: list[int] = []
        next_id: int | None = None
        for gen in included:
            starts, counts = decode_id_spans(bytes.fromhex(gen["spans_hex"]))
            if len(starts) != len(gen["partitions"]):
                raise StorageError(
                    f"store at {self.path!r}: generation {gen['id']} span "
                    "count does not match its partitions"
                )
            for part, start, count in zip(gen["partitions"], starts, counts):
                if next_id is not None and int(start) != next_id:
                    raise StorageError(
                        f"store at {self.path!r}: snapshot at generation "
                        f"{self.generation} is not contiguous (expected row "
                        f"ID {next_id}, got {int(start)}); it was compacted "
                        "away or the manifest is corrupt -- re-open the table"
                    )
                next_id = int(start) + int(count)
                self._entries.append(part)
                starts_all.append(int(start))
                counts_all.append(int(count))
        self._starts = np.asarray(starts_all, dtype=np.uint64)
        self._counts = np.asarray(counts_all, dtype=np.uint64)
        self._partitions: dict[int, Partition] = {}
        self._lock = threading.Lock()
        #: Per-partition zone-map statistics (None for pre-v3 entries).
        self.zone_maps: list[dict | None] = [
            entry.get("stats") for entry in self._entries
        ]

    @property
    def num_partitions(self) -> int:
        return len(self._entries)

    @property
    def num_rows(self) -> int:
        return int(self._counts.sum())

    @property
    def column_names(self) -> list[str]:
        return sorted(self.manifest["columns"])

    def partition(self, index: int) -> Partition:
        """The partition at ``index``, memory-mapped and cached."""
        with self._lock:
            part = self._partitions.get(index)
            if part is None:
                part = self._load_partition(index)
                self._partitions[index] = part
            return part

    def release(self, index: int) -> None:
        """Drop the cached partition at ``index`` (its maps close once
        no slice references them); compaction releases fully consumed
        sources so a large run never pins the whole table."""
        with self._lock:
            self._partitions.pop(index, None)

    def table(self) -> Table:
        """Materialise the snapshot (column data stays memory-mapped)."""
        parts = [self.partition(i) for i in range(self.num_partitions)]
        return Table(
            self.table_name,
            parts,
            store_path=self.path,
            store_generation=self.generation,
            zone_maps=list(self.zone_maps),
        )

    # -- internals -----------------------------------------------------------

    def _load_partition(self, index: int) -> Partition:
        if not 0 <= index < self.num_partitions:
            raise StorageError(
                f"store at {self.path!r} has no partition {index} "
                f"(0..{self.num_partitions - 1})"
            )
        entry = self._entries[index]
        rows = int(self._counts[index])
        part_dir = os.path.join(self.path, entry["dir"])
        columns: dict[str, np.ndarray] = {}
        for name, spec in self.manifest["columns"].items():
            target = os.path.join(part_dir, _column_filename(name))
            expected = int(entry["files"][name])
            try:
                actual = os.path.getsize(target)
            except OSError:
                raise StorageError(
                    f"store at {self.path!r}: missing column file "
                    f"{entry['dir']}/{name}.bin"
                ) from None
            if actual != expected:
                raise StorageError(
                    f"store at {self.path!r}: column file {entry['dir']}/{name}.bin "
                    f"is {actual} bytes, manifest says {expected} (truncated or "
                    "overwritten?)"
                )
            columns[name] = self._load_column(target, spec, rows, expected)
        return Partition(
            columns=columns,
            start_id=int(self._starts[index]),
            ref=PartitionRef(self.path, index, self.generation, self.store_id),
        )

    def _load_column(
        self, target: str, spec: dict, rows: int, nbytes: int
    ) -> np.ndarray:
        if spec["dtype"] == "object":
            with open(target, "rb") as fh:
                return decode_object_column(fh.read(), rows)
        dtype = np.dtype(spec["dtype"])
        width = int(spec["width"])
        shape = (rows,) if spec["ndim"] == 1 else (rows, width)
        if rows * width * dtype.itemsize != nbytes:
            raise StorageError(
                f"store at {self.path!r}: {os.path.basename(target)} holds "
                f"{nbytes} bytes but the manifest shape needs "
                f"{rows * width * dtype.itemsize}"
            )
        if rows == 0:
            return np.empty(shape, dtype=dtype)
        # mode="r" maps the ciphertexts read-only: partitions stream from
        # the page cache and no task can mutate stored data in place.
        return np.memmap(target, dtype=dtype, mode="r", shape=shape)


# ---------------------------------------------------------------------------
# The per-process reader cache (worker-side resolution)
# ---------------------------------------------------------------------------

_READERS: dict[tuple[str, str | None, int], StoreReader] = {}
_READERS_LOCK = threading.Lock()
#: path -> (manifest stat signature, generation counter, store id); lets
#: the hot path discover the current state with a stat instead of a parse.
_STATE_CACHE: dict[str, tuple[tuple, int, str | None]] = {}
#: Superseded snapshots to keep mapped per store: enough for in-flight
#: queries over recent generations without pinning every old map forever.
#: Per-process; shard workers apply ``ClusterConfig.reader_keep_generations``
#: through :func:`set_reader_keep_generations` so N co-resident workers
#: don't multiply the mapped-snapshot footprint.
_KEEP_GENERATIONS = 4


def reader_keep_generations() -> int:
    """This process's reader-cache retention bound (snapshots per store)."""
    return _KEEP_GENERATIONS


def set_reader_keep_generations(keep: int) -> None:
    """Set how many superseded snapshots stay cached per store (>= 1)."""
    global _KEEP_GENERATIONS
    keep = int(keep)
    if keep < 1:
        raise StorageError(
            f"reader_keep_generations must be at least 1, got {keep}"
        )
    _KEEP_GENERATIONS = keep


def _manifest_signature(manifest_path: str) -> tuple | None:
    """Identity of the manifest file on disk (rewrites replace the inode)."""
    try:
        st = os.stat(manifest_path)
    except OSError:
        return None
    return (st.st_ino, st.st_mtime_ns, st.st_size)


def _current_state(path: str) -> tuple[int, str | None, tuple | None]:
    """(generation counter, store id, manifest signature), stat-guarded."""
    signature = _manifest_signature(os.path.join(path, MANIFEST_NAME))
    with _READERS_LOCK:
        cached = _STATE_CACHE.get(path)
        if cached is not None and cached[0] == signature:
            return cached[1], cached[2], signature
    manifest = _read_manifest(path)
    state = (int(manifest["generation"]), manifest.get("store_id"))
    with _READERS_LOCK:
        _STATE_CACHE[path] = (signature, state[0], state[1])
    return state[0], state[1], signature


def current_generation(path: str | os.PathLike) -> int:
    """The store's generation counter right now (stat-guarded cache)."""
    return _current_state(os.path.abspath(os.fspath(path)))[0]


def reader(path: str | os.PathLike) -> StoreReader:
    """Open (or reuse) the cached reader for the store's *current* state.

    Pool worker processes call this through :func:`resolve_partition`, so
    each process parses a store's manifest once per generation and keeps
    its maps open across stages.  A cheap manifest stat guards the cache:
    a store advanced by *any* process (every mutation replaces the
    manifest atomically, so its inode changes) is re-opened at its new
    generation -- and a store wholesale *replaced* at the same path gets
    a fresh store id, so its old readers can never be served.
    """
    return reader_at(path, current_generation(path))


def reader_at(path: str | os.PathLike, generation: int) -> StoreReader:
    """Open (or reuse) the cached reader for one pinned snapshot.

    This is what makes concurrent reads append-safe on every backend: a
    :class:`PartitionRef` created at generation G resolves through the
    G-keyed reader even after later appends, because generations are
    append-only and snapshot G is reconstructable from any newer
    manifest.  A cache hit is honoured only while the manifest is
    byte-identical to the one the reader was opened against; any store
    mutation since (an append, or a compaction that may have *retired*
    this snapshot) re-opens the snapshot, which re-runs the
    compacted-away validation in :class:`StoreReader` -- so a worker
    process that cached a snapshot before a compaction elsewhere gets
    the documented :class:`StorageError` instead of reading deleted
    files.  Readers more than :data:`_KEEP_GENERATIONS` behind a newly
    opened snapshot are evicted from this process's cache.
    """
    key = os.path.abspath(os.fspath(path))
    _, store_id, signature = _current_state(key)
    with _READERS_LOCK:
        found = _READERS.get((key, store_id, generation))
        if found is not None and found.signature == signature:
            return found
    built = StoreReader(key, generation=generation)
    with _READERS_LOCK:
        _READERS[(key, store_id, generation)] = built
        for cached_key in [
            k for k in _READERS
            if k[0] == key and k[2] <= generation - _KEEP_GENERATIONS
        ]:
            del _READERS[cached_key]
        return built


def _evict_cached(path: str) -> None:
    key = os.path.abspath(path)
    with _READERS_LOCK:
        _STATE_CACHE.pop(key, None)
        for cached_key in [k for k in _READERS if k[0] == key]:
            del _READERS[cached_key]


def _evict_cached_below(path: str, generation: int) -> None:
    key = os.path.abspath(path)
    with _READERS_LOCK:
        for cached_key in [
            k for k in _READERS if k[0] == key and k[2] < generation
        ]:
            del _READERS[cached_key]


def open_store(path: str | os.PathLike, generation: int | None = None) -> Table:
    """Attach to a stored table: manifest parse + memory maps, no copies.

    ``generation`` pins a snapshot (see :class:`StoreReader`); the
    default is the store's current state.
    """
    if generation is None:
        return reader(path).table()
    return reader_at(path, generation).table()


def resolve_partition(part: Partition | PartitionRef) -> Partition:
    """Turn a dispatched :class:`PartitionRef` back into a partition.

    In-memory partitions pass through untouched; refs resolve through the
    per-process reader cache *at the ref's pinned generation*, so a
    worker's first touch of a snapshot maps its files and every later
    stage is a dictionary lookup -- and a query planned before an append
    keeps reading its own snapshot.
    """
    if isinstance(part, PartitionRef):
        if part.generation is None:
            return reader(part.path).partition(part.index)
        resolved = reader_at(part.path, part.generation)
        if part.store_id is not None and resolved.store_id != part.store_id:
            raise StorageError(
                f"the store at {part.path!r} was replaced since this query "
                "planned (store identity changed); re-open the table"
            )
        return resolved.partition(part.index)
    return part


def dispatch_payload(part: Partition) -> Partition | PartitionRef:
    """What a stage should ship for ``part``: its ref when store-backed."""
    return part.ref if part.ref is not None else part


def disk_bytes(path: str | os.PathLike) -> int:
    """Total bytes the store occupies on disk (column files + manifest)."""
    path = os.fspath(path)
    total = 0
    for dirpath, _, filenames in os.walk(path):
        for filename in filenames:
            total += os.path.getsize(os.path.join(dirpath, filename))
    return total


def rebuild_stats(path: str | os.PathLike) -> dict[str, Any]:
    """Recompute zone-map statistics for *every* partition and publish.

    The eager counterpart of the lazy first-mutation backfill: attaches
    v3 stats to v1/v2 stores without waiting for an append, and refreshes
    stats whose build parameters changed.  Publishing follows the same
    atomic manifest replace as every other mutation (readers see the old
    stats or the new ones, never a mix).  Returns the new index summary
    (:func:`store_stats`).
    """
    path = os.path.abspath(os.fspath(path))
    manifest = _read_manifest(path)
    if manifest.get("store_id") is None:
        manifest["store_id"] = os.urandom(8).hex()  # v1 upgrade
    for gen in manifest["generations"]:
        for part in gen["partitions"]:
            part.pop("stats", None)
    _ensure_stats(path, manifest)
    _write_manifest(path, manifest)
    return store_stats(path)


def store_stats(path: str | os.PathLike) -> dict[str, Any]:
    """Zone-map index summary: coverage and per-column artifact counts."""
    manifest = _read_manifest(os.path.abspath(os.fspath(path)))
    zone_maps = [
        part.get("stats")
        for gen in manifest["generations"]
        for part in gen["partitions"]
    ]
    summary = stats_summary(zone_maps)
    summary["generation"] = int(manifest["generation"])
    return summary


def store_generations(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Introspection: per-generation summary (id, rows, partitions, dirs).

    Used by tests, benchmarks and the quickstart's ingestion demo to show
    the generation log without touching manifest internals.
    """
    manifest = _read_manifest(os.path.abspath(os.fspath(path)))
    return [
        {
            "id": int(g["id"]),
            "dir": g["dir"],
            "num_rows": int(g["num_rows"]),
            "num_partitions": len(g["partitions"]),
            "compacted_from": list(g.get("compacted_from", [])),
        }
        for g in manifest["generations"]
    ]
