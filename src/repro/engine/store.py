"""Persistent columnar partition store with memory-mapped loading.

The paper's deployment model (Sections 5-6) is a long-lived encrypted
dataset living in untrusted cloud storage: the client encrypts and uploads
once, then analytics jobs attach to the stored ciphertexts again and
again.  This module is that durable layer for the simulated cluster.

Layout of one store directory::

    <store>/
      manifest.json          # format version, schema, spans, file sizes
      part-00000/
        revenue__ashe.bin    # raw little-endian numpy buffer
        country__det.bin
        ...
      part-00001/...

Every numeric column is written as its raw C-contiguous little-endian
buffer and loaded back as a read-only :class:`numpy.memmap` view, so a
partition larger than RAM streams from the OS page cache and opening a
table costs directory stats, not byte copies.  Paillier ciphertext
columns (``object`` dtype big-ints) cannot be mapped; they reuse the
varint framing of :mod:`repro.engine.storage` and load eagerly.

The manifest records each partition's row-ID interval with the ID-list
span codec (:func:`repro.idlist.codec.encode_id_spans`) -- the same
serialisation machinery the query path ships ID lists with -- plus
per-file byte counts, so truncated or swapped column files are rejected
with :class:`~repro.errors.StorageError` before a single ciphertext is
decrypted.

:class:`PartitionRef` is the store's unit of *dispatch*: a tiny picklable
``(path, index)`` descriptor.  Stage task bodies resolve it through a
per-process reader cache (:func:`resolve_partition`), so the
``processes`` execution backend ships descriptors to pool workers and
each worker maps its slice locally instead of receiving pickled column
payloads -- the same reason Spark tasks read their HDFS split locally
rather than having the driver push blocks.

Everything stored here is public material: ciphertext columns, row IDs,
and dtype bookkeeping.  Client-side state (plaintext schema, dictionaries,
key-check values) is persisted separately by :mod:`repro.core.persistence`.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from dataclasses import dataclass

import numpy as np

from repro.engine.storage import decode_object_column, encode_object_column
from repro.engine.table import Partition, Table
from repro.errors import StorageError
from repro.idlist.codec import decode_id_spans, encode_id_spans

FORMAT_NAME = "seabed-store"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: numpy dtype name -> on-disk little-endian spec (the manifest records
#: the spec, so byte order is explicit regardless of the writing host).
_DTYPE_SPECS: dict[str, str] = {
    "int64": "<i8",
    "uint64": "<u8",
    "float64": "<f8",
    "bool": "|b1",
    "object": "object",
}
_SPEC_DTYPES = {v: k for k, v in _DTYPE_SPECS.items()}


@dataclass(frozen=True)
class PartitionRef:
    """Picklable handle to one stored partition: what stage dispatch ships."""

    path: str
    index: int


def _partition_dir(index: int) -> str:
    return f"part-{index:05d}"


def _column_filename(name: str) -> str:
    if not name or name in (".", "..") or os.sep in name or "\x00" in name:
        raise StorageError(f"column name {name!r} is not storable")
    return f"{name}.bin"


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _column_spec(name: str, arr: np.ndarray) -> dict:
    dtype_name = "object" if arr.dtype == object else arr.dtype.name
    spec = _DTYPE_SPECS.get(dtype_name)
    if spec is None:
        raise StorageError(
            f"column {name!r} has unsupported dtype {arr.dtype} "
            f"(storable: {sorted(_DTYPE_SPECS)})"
        )
    if arr.ndim not in (1, 2):
        raise StorageError(f"column {name!r} has unsupported ndim {arr.ndim}")
    return {
        "dtype": spec,
        "ndim": int(arr.ndim),
        "width": 1 if arr.ndim == 1 else int(arr.shape[1]),
    }


def write_store(
    table: Table,
    path: str | os.PathLike,
    column_meta: dict[str, str] | None = None,
    overwrite: bool = False,
) -> str:
    """Persist ``table`` under ``path``; returns the absolute store path.

    ``column_meta`` attaches one opaque string per column to the manifest
    (the session records each physical column's encryption class there).
    An existing store is refused unless ``overwrite=True``, in which case
    its partition directories and manifest are replaced atomically enough
    for a single writer (manifest written last).
    """
    path = os.path.abspath(os.fspath(path))
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        if not overwrite:
            raise StorageError(
                f"store already exists at {path!r}; pass overwrite=True to replace"
            )
        _evict_cached(path)
        for entry in os.listdir(path):
            if entry == MANIFEST_NAME or entry.startswith("part-"):
                target = os.path.join(path, entry)
                shutil.rmtree(target) if os.path.isdir(target) else os.remove(target)
    os.makedirs(path, exist_ok=True)

    if not table.partitions:
        raise StorageError(f"table {table.name!r} has no partitions to store")
    columns: dict[str, dict] = {}
    for name in table.column_names:
        columns[name] = _column_spec(name, table.partitions[0].column(name))
        if column_meta and name in column_meta:
            columns[name]["enc"] = column_meta[name]

    partitions = []
    starts = np.asarray([p.start_id for p in table.partitions], dtype=np.uint64)
    counts = np.asarray([p.nrows for p in table.partitions], dtype=np.uint64)
    for index, part in enumerate(table.partitions):
        part_dir = os.path.join(path, _partition_dir(index))
        os.makedirs(part_dir, exist_ok=True)
        files: dict[str, int] = {}
        for name, spec in columns.items():
            arr = part.column(name)
            actual = _column_spec(name, arr)
            if (actual["dtype"], actual["width"]) != (spec["dtype"], spec["width"]):
                raise StorageError(
                    f"column {name!r} changes dtype/shape across partitions"
                )
            target = os.path.join(part_dir, _column_filename(name))
            if spec["dtype"] == "object":
                payload = encode_object_column(arr)
                with open(target, "wb") as fh:
                    fh.write(payload)
                files[name] = len(payload)
            else:
                buf = np.ascontiguousarray(arr, dtype=np.dtype(spec["dtype"]))
                buf.tofile(target)
                files[name] = int(buf.nbytes)
        partitions.append({"dir": _partition_dir(index), "files": files})

    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "table": table.name,
        "num_rows": int(counts.sum()),
        "spans_hex": encode_id_spans(starts, counts).hex(),
        "columns": columns,
        "partitions": partitions,
    }
    tmp = manifest_path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, manifest_path)
    return path


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class StoreReader:
    """One opened store: parsed manifest plus lazily mapped partitions."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.path.abspath(os.fspath(path))
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        self.generation = _store_generation(manifest_path)
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise StorageError(f"no partition store at {self.path!r}") from None
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt store manifest at {self.path!r}: {exc}") from None
        if manifest.get("format") != FORMAT_NAME:
            raise StorageError(f"{self.path!r} is not a {FORMAT_NAME} directory")
        version = manifest.get("version")
        if version != FORMAT_VERSION:
            raise StorageError(
                f"store at {self.path!r} has format version {version!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        self.manifest = manifest
        self.table_name: str = manifest["table"]
        starts, counts = decode_id_spans(bytes.fromhex(manifest["spans_hex"]))
        if len(starts) != len(manifest["partitions"]):
            raise StorageError(
                f"store at {self.path!r}: span count does not match partitions"
            )
        self._starts = starts
        self._counts = counts
        self._partitions: dict[int, Partition] = {}
        self._lock = threading.Lock()

    @property
    def num_partitions(self) -> int:
        return len(self.manifest["partitions"])

    @property
    def num_rows(self) -> int:
        return int(self._counts.sum())

    def partition(self, index: int) -> Partition:
        """The partition at ``index``, memory-mapped and cached."""
        with self._lock:
            part = self._partitions.get(index)
            if part is None:
                part = self._load_partition(index)
                self._partitions[index] = part
            return part

    def table(self) -> Table:
        """Materialise the whole table (column data stays memory-mapped)."""
        parts = [self.partition(i) for i in range(self.num_partitions)]
        return Table(self.table_name, parts, store_path=self.path)

    # -- internals -----------------------------------------------------------

    def _load_partition(self, index: int) -> Partition:
        if not 0 <= index < self.num_partitions:
            raise StorageError(
                f"store at {self.path!r} has no partition {index} "
                f"(0..{self.num_partitions - 1})"
            )
        entry = self.manifest["partitions"][index]
        rows = int(self._counts[index])
        part_dir = os.path.join(self.path, entry["dir"])
        columns: dict[str, np.ndarray] = {}
        for name, spec in self.manifest["columns"].items():
            target = os.path.join(part_dir, _column_filename(name))
            expected = int(entry["files"][name])
            try:
                actual = os.path.getsize(target)
            except OSError:
                raise StorageError(
                    f"store at {self.path!r}: missing column file "
                    f"{entry['dir']}/{name}.bin"
                ) from None
            if actual != expected:
                raise StorageError(
                    f"store at {self.path!r}: column file {entry['dir']}/{name}.bin "
                    f"is {actual} bytes, manifest says {expected} (truncated or "
                    "overwritten?)"
                )
            columns[name] = self._load_column(target, spec, rows, expected)
        return Partition(
            columns=columns,
            start_id=int(self._starts[index]),
            ref=PartitionRef(self.path, index),
        )

    def _load_column(
        self, target: str, spec: dict, rows: int, nbytes: int
    ) -> np.ndarray:
        if spec["dtype"] == "object":
            with open(target, "rb") as fh:
                return decode_object_column(fh.read(), rows)
        dtype = np.dtype(spec["dtype"])
        width = int(spec["width"])
        shape = (rows,) if spec["ndim"] == 1 else (rows, width)
        if rows * width * dtype.itemsize != nbytes:
            raise StorageError(
                f"store at {self.path!r}: {os.path.basename(target)} holds "
                f"{nbytes} bytes but the manifest shape needs "
                f"{rows * width * dtype.itemsize}"
            )
        if rows == 0:
            return np.empty(shape, dtype=dtype)
        # mode="r" maps the ciphertexts read-only: partitions stream from
        # the page cache and no task can mutate stored data in place.
        return np.memmap(target, dtype=dtype, mode="r", shape=shape)


# ---------------------------------------------------------------------------
# The per-process reader cache (worker-side resolution)
# ---------------------------------------------------------------------------

_READERS: dict[str, StoreReader] = {}
_READERS_LOCK = threading.Lock()


def _store_generation(manifest_path: str) -> tuple | None:
    """Identity of the manifest file on disk (rewrites replace the inode)."""
    try:
        st = os.stat(manifest_path)
    except OSError:
        return None
    return (st.st_ino, st.st_mtime_ns, st.st_size)


def reader(path: str | os.PathLike) -> StoreReader:
    """Open (or reuse) the cached reader for ``path``.

    Pool worker processes call this through :func:`resolve_partition`, so
    each process parses a store's manifest once and keeps its maps open
    across stages.  A cheap manifest stat guards the cache: a store
    rewritten by *any* process (``write_store`` replaces the manifest
    atomically, so its inode changes) is re-opened instead of served from
    stale maps.
    """
    key = os.path.abspath(os.fspath(path))
    generation = _store_generation(os.path.join(key, MANIFEST_NAME))
    with _READERS_LOCK:
        found = _READERS.get(key)
        if found is None or found.generation != generation:
            found = StoreReader(key)
            _READERS[key] = found
        return found


def _evict_cached(path: str) -> None:
    with _READERS_LOCK:
        _READERS.pop(os.path.abspath(path), None)


def open_store(path: str | os.PathLike) -> Table:
    """Attach to a stored table: manifest parse + memory maps, no copies."""
    return reader(path).table()


def resolve_partition(part: Partition | PartitionRef) -> Partition:
    """Turn a dispatched :class:`PartitionRef` back into a partition.

    In-memory partitions pass through untouched; refs resolve through the
    per-process reader cache, so a worker's first touch of a store maps
    its files and every later stage is a dictionary lookup.
    """
    if isinstance(part, PartitionRef):
        return reader(part.path).partition(part.index)
    return part


def dispatch_payload(part: Partition) -> Partition | PartitionRef:
    """What a stage should ship for ``part``: its ref when store-backed."""
    return part.ref if part.ref is not None else part


def disk_bytes(path: str | os.PathLike) -> int:
    """Total bytes the store occupies on disk (column files + manifest)."""
    path = os.fspath(path)
    total = 0
    for dirpath, _, filenames in os.walk(path):
        for filename in filenames:
            total += os.path.getsize(os.path.join(dirpath, filename))
    return total
