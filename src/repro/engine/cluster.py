"""The simulated cluster: real task execution, simulated placement.

Substitution note (DESIGN.md Section 4): the paper measures a Spark
deployment on up to 100 Azure cores.  Here, every task body executes for
real and its wall time is measured; the cluster then *schedules* those
measured durations onto ``config.cores`` simulated cores (FIFO onto the
least-loaded core, which is how Spark's standalone scheduler behaves for
a single stage) and reports the resulting makespan.  Network transfers are
modelled with a bandwidth + latency link, configurable separately for the
intra-cluster shuffle path and the server-to-client path -- Section 6.6
of the paper varies the client link from 2 Gbps/0ms to 10 Mbps/100ms.

Stragglers: the paper observes occasional straggler tasks caused by GC
pauses (Section 6.2).  ``straggler_prob``/``straggler_factor`` inject that
behaviour deterministically (seeded) into the simulated schedule so its
effect on job latency can be studied without waiting for a real GC.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, replace
from random import Random
from typing import Callable, Sequence, TypeVar

from repro.engine.metrics import JobMetrics, StageMetrics
from repro.errors import ExecutionError

T = TypeVar("T")

GBPS = 1e9 / 8  # bytes per second per Gbit/s
MBPS = 1e6 / 8


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for the simulated deployment.

    Defaults approximate the paper's testbed: 100-core jobs see a ~0.6 s
    floor from job/task creation (Figure 6a), a 2 Gbps client link, and a
    fast intra-cluster network.
    """

    cores: int = 16
    task_startup_s: float = 0.002  # per-task scheduling/deserialisation cost
    job_startup_s: float = 0.25  # driver-side job submission floor
    shuffle_bandwidth_bytes_s: float = 4 * GBPS
    shuffle_latency_s: float = 0.001
    client_bandwidth_bytes_s: float = 2 * GBPS
    client_latency_s: float = 0.0005
    straggler_prob: float = 0.0
    straggler_factor: float = 8.0
    seed: int = 0

    def with_cores(self, cores: int) -> "ClusterConfig":
        return replace(self, cores=cores)

    def with_client_link(self, bandwidth_bytes_s: float, latency_s: float) -> "ClusterConfig":
        return replace(
            self,
            client_bandwidth_bytes_s=bandwidth_bytes_s,
            client_latency_s=latency_s,
        )


def makespan(durations: Sequence[float], cores: int) -> float:
    """FIFO placement of task durations onto the least-loaded core."""
    if cores < 1:
        raise ExecutionError(f"cluster must have at least one core, got {cores}")
    if not durations:
        return 0.0
    loads = [0.0] * min(cores, len(durations))
    heapq.heapify(loads)
    for d in durations:
        heapq.heappush(loads, heapq.heappop(loads) + d)
    return max(loads)


class SimulatedCluster:
    """Executes stages of tasks and accounts simulated time."""

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config or ClusterConfig()
        self._rng = Random(self.config.seed)

    # -- stage execution -----------------------------------------------------

    def run_stage(
        self,
        name: str,
        tasks: Sequence[Callable[[], T]],
        metrics: JobMetrics | None = None,
    ) -> tuple[list[T], StageMetrics]:
        """Run every task, measure it, and simulate the stage makespan."""
        results: list[T] = []
        times: list[float] = []
        for task in tasks:
            t0 = time.perf_counter()
            results.append(task())
            elapsed = time.perf_counter() - t0
            simulated = elapsed + self.config.task_startup_s
            if (
                self.config.straggler_prob > 0.0
                and self._rng.random() < self.config.straggler_prob
            ):
                simulated *= self.config.straggler_factor
            times.append(simulated)
        stage = StageMetrics(name=name, task_times=times, makespan=makespan(times, self.config.cores))
        if metrics is not None:
            metrics.add_stage(stage)
        return results, stage

    def run_driver(
        self, name: str, fn: Callable[[], T], metrics: JobMetrics | None = None
    ) -> T:
        """Run single-threaded driver-side work (merge, re-encode...)."""
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        stage = StageMetrics(name=name, task_times=[elapsed], makespan=elapsed)
        if metrics is not None:
            metrics.add_stage(stage)
        return result

    # -- network model --------------------------------------------------------

    def shuffle_time(self, nbytes: int) -> float:
        cfg = self.config
        return cfg.shuffle_latency_s + nbytes / cfg.shuffle_bandwidth_bytes_s

    def client_transfer_time(self, nbytes: int) -> float:
        cfg = self.config
        return cfg.client_latency_s + nbytes / cfg.client_bandwidth_bytes_s

    def account_shuffle(self, metrics: JobMetrics, nbytes: int) -> None:
        metrics.shuffle_bytes += nbytes
        metrics.shuffle_time += self.shuffle_time(nbytes)

    def account_shuffle_parallel(
        self, metrics: JobMetrics, nbytes: int, receivers: int
    ) -> None:
        """Shuffle into ``receivers`` reduce tasks.

        ``shuffle_bandwidth_bytes_s`` is the *aggregate* fabric bandwidth;
        each receiving node pulls through a 1/cores share of it.  With
        fewer receivers than cores the transfer is bottlenecked on the few
        active links -- the effect the paper's group-inflation
        optimisation exists to fix (Section 4.5).
        """
        cfg = self.config
        per_node = cfg.shuffle_bandwidth_bytes_s / max(cfg.cores, 1)
        active = max(1, min(receivers, cfg.cores))
        metrics.shuffle_bytes += nbytes
        metrics.shuffle_time += cfg.shuffle_latency_s + (nbytes / active) / per_node

    def account_result_transfer(self, metrics: JobMetrics, nbytes: int) -> None:
        metrics.result_bytes += nbytes
        metrics.network_time += self.client_transfer_time(nbytes)

    def new_job(self) -> JobMetrics:
        return JobMetrics(job_startup=self.config.job_startup_s)
