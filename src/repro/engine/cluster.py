"""The simulated cluster: real task execution, simulated placement.

Substitution note (DESIGN.md Section 4): the paper measures a Spark
deployment on up to 100 Azure cores.  Here, every task body executes for
real and its wall time is measured; the cluster then *schedules* those
measured durations onto ``config.cores`` simulated cores (FIFO onto the
least-loaded core, which is how Spark's standalone scheduler behaves for
a single stage) and reports the resulting makespan.  Network transfers are
modelled with a bandwidth + latency link, configurable separately for the
intra-cluster shuffle path and the server-to-client path -- Section 6.6
of the paper varies the client link from 2 Gbps/0ms to 10 Mbps/100ms.

Stragglers: the paper observes occasional straggler tasks caused by GC
pauses (Section 6.2).  ``straggler_prob``/``straggler_factor`` inject that
behaviour deterministically (seeded) into the simulated schedule so its
effect on job latency can be studied without waiting for a real GC.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from random import Random
from typing import Callable, Sequence, TypeVar

from repro.engine import store
from repro.engine.backends import ExecutionBackend, TimedResult, make_backend
from repro.engine.metrics import JobMetrics, StageMetrics
from repro.errors import ExecutionError
from repro.obs import trace as obs_trace

T = TypeVar("T")

GBPS = 1e9 / 8  # bytes per second per Gbit/s
MBPS = 1e6 / 8


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for the simulated deployment.

    Defaults approximate the paper's testbed: 100-core jobs see a ~0.6 s
    floor from job/task creation (Figure 6a), a 2 Gbps client link, and a
    fast intra-cluster network.

    Execution-backend knobs (see :mod:`repro.engine.backends`):

    - ``backend`` selects how task bodies actually run: ``"serial"``
      (the default -- one after another on the calling thread, exactly
      the seed behaviour), ``"threads"`` (a ``ThreadPoolExecutor``;
      numpy kernels release the GIL so stages overlap on real cores),
      or ``"processes"`` (a ``ProcessPoolExecutor`` for CPU-bound
      pure-Python stages such as Paillier products; stage bodies must
      be picklable top-level functions, which the server's are).
    - ``workers`` sizes the pool; ``0`` means one worker per host CPU.

    ``storage_dir`` is the deployment's durable storage root: relative
    store names passed to ``EncryptedTable.save`` / ``SeabedSession.
    open_table`` resolve under it (the "cloud bucket" the paper uploads
    encrypted datasets into once and attaches to repeatedly).

    ``append_partition_rows`` is how incoming batches are routed into
    partitions: ``SeabedSession.append_rows`` slices each streamed batch
    into partitions of roughly this many rows (one partition for smaller
    batches); store compaction then merges runs of small append
    generations back into full-size partitions (sized, by default, like
    the store's own largest generation).

    The choice of backend changes only *real* wall-clock (reported per
    stage as ``StageMetrics.wall_time`` and per job as
    ``JobMetrics.real_time``); the *simulated* makespan is still computed
    from per-task measured durations placed onto ``cores`` simulated
    cores, so figure benchmarks are backend-independent.
    """

    cores: int = 16
    task_startup_s: float = 0.002  # per-task scheduling/deserialisation cost
    job_startup_s: float = 0.25  # driver-side job submission floor
    shuffle_bandwidth_bytes_s: float = 4 * GBPS
    shuffle_latency_s: float = 0.001
    client_bandwidth_bytes_s: float = 2 * GBPS
    client_latency_s: float = 0.0005
    straggler_prob: float = 0.0
    straggler_factor: float = 8.0
    seed: int = 0
    backend: str = "serial"  # "serial" | "threads" | "processes"
    workers: int = 0  # pool width; 0 -> one worker per host CPU
    storage_dir: str | None = None  # root for persistent partition stores
    append_partition_rows: int = 65_536  # target rows per appended partition
    reader_keep_generations: int = 4  # superseded snapshots cached per store
    #: Under the ``processes`` backend, spill in-memory tables to a
    #: scratch mmap store on register so stage dispatch ships tiny
    #: ``PartitionRef``s instead of pickled ciphertext columns.  Off
    #: buys back the one-time spill write for short-lived tables (and
    #: gives benchmarks the pickled-column baseline).
    spill_to_store: bool = True
    #: Slow-query threshold (seconds of simulated server time).  When
    #: set, queries whose ``JobMetrics.server_time`` crosses it emit a
    #: structured ``slow_query`` event on the ``repro.obs`` logger and
    #: bump ``seabed_slow_queries_total``.  ``None`` disables the log.
    slow_query_s: float | None = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ExecutionError(
                f"cluster must have at least one core, got {self.cores}"
            )
        if self.workers < 0:
            raise ExecutionError(
                f"workers must be 0 (one per host CPU) or positive, "
                f"got {self.workers}"
            )
        if self.append_partition_rows < 1:
            raise ExecutionError(
                f"append_partition_rows must be positive, "
                f"got {self.append_partition_rows}"
            )
        if self.reader_keep_generations < 1:
            raise ExecutionError(
                f"reader_keep_generations must be at least 1, "
                f"got {self.reader_keep_generations}"
            )
        if self.slow_query_s is not None and self.slow_query_s < 0:
            raise ExecutionError(
                f"slow_query_s must be None or non-negative, "
                f"got {self.slow_query_s}"
            )

    def with_cores(self, cores: int) -> "ClusterConfig":
        return replace(self, cores=cores)

    def with_client_link(self, bandwidth_bytes_s: float, latency_s: float) -> "ClusterConfig":
        return replace(
            self,
            client_bandwidth_bytes_s=bandwidth_bytes_s,
            client_latency_s=latency_s,
        )

    def with_backend(self, backend: str, workers: int = 0) -> "ClusterConfig":
        return replace(self, backend=backend, workers=workers)

    def with_storage(self, storage_dir: str | None) -> "ClusterConfig":
        return replace(self, storage_dir=storage_dir)

    def resolve_store_path(self, name_or_path: str) -> str:
        """Resolve a store name against ``storage_dir`` (absolute paths and
        explicitly relative ``./``-style paths pass through)."""
        if self.storage_dir is None or os.path.isabs(name_or_path):
            return name_or_path
        head = name_or_path.split(os.sep, 1)[0]
        if head in (".", ".."):
            return name_or_path
        return os.path.join(self.storage_dir, name_or_path)


def makespan(durations: Sequence[float], cores: int) -> float:
    """FIFO placement of task durations onto the least-loaded core."""
    if cores < 1:
        raise ExecutionError(f"cluster must have at least one core, got {cores}")
    if not durations:
        return 0.0
    loads = [0.0] * min(cores, len(durations))
    heapq.heapify(loads)
    for d in durations:
        heapq.heappush(loads, heapq.heappop(loads) + d)
    return max(loads)


class SimulatedCluster:
    """Executes stages of tasks and accounts simulated time.

    Task bodies run through a pluggable :class:`ExecutionBackend`
    (serial / threads / processes); the *simulated* schedule is computed
    from the measured per-task durations regardless of how they actually
    ran, while the stage's *real* wall-clock is recorded alongside it.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        backend: ExecutionBackend | None = None,
    ):
        self.config = config or ClusterConfig()
        if self.config.reader_keep_generations != store.reader_keep_generations():
            store.set_reader_keep_generations(self.config.reader_keep_generations)
        self._rng = Random(self.config.seed)
        # query_many() may drive stages from several threads at once; the
        # straggler RNG is the only shared mutable state on this path.
        self._rng_lock = threading.Lock()
        self.backend = backend or make_backend(
            self.config.backend, self.config.workers or None
        )
        # Zero-copy spill root (see scratch_dir); created lazily because
        # most clusters never need it.
        self._scratch: tempfile.TemporaryDirectory | None = None
        self._scratch_lock = threading.Lock()

    def scratch_dir(self) -> str:
        """Scratch root for zero-copy spill stores, created on first use.

        The server spills in-memory tables here when workers live in
        other processes, so stage dispatch ships mmap-backed
        ``PartitionRef``s instead of pickled ciphertext columns.  Removed
        by :meth:`close` (and by the interpreter's tempdir finalizer as a
        backstop).
        """
        with self._scratch_lock:
            if self._scratch is None:
                self._scratch = tempfile.TemporaryDirectory(prefix="seabed-spill-")
            return self._scratch.name

    def close(self) -> None:
        """Shut down any worker pool held by the backend and remove any
        spill stores (idempotent)."""
        self.backend.close()
        with self._scratch_lock:
            scratch, self._scratch = self._scratch, None
        if scratch is not None:
            scratch.cleanup()

    # -- stage execution -----------------------------------------------------

    def run_stage(
        self,
        name: str,
        tasks: Sequence[Callable[[], T]],
        metrics: JobMetrics | None = None,
    ) -> tuple[list[T], StageMetrics]:
        """Run every task, measure it, and simulate the stage makespan.

        Tasks are zero-arg callables (closures allowed); the ``processes``
        backend executes this legacy form in-process.  New code should
        prefer :meth:`map_stage`, which every backend can parallelise.
        """
        wall0 = time.perf_counter()
        timed = self.backend.run_tasks(list(tasks))
        wall = time.perf_counter() - wall0
        return self._finish_stage(name, timed, wall, metrics)

    def map_stage(
        self,
        name: str,
        fn: Callable[..., T],
        calls: Sequence[tuple],
        metrics: JobMetrics | None = None,
    ) -> tuple[list[T], StageMetrics]:
        """Run ``fn(*call)`` per call through the backend.

        ``fn`` must be a top-level function and the call tuples picklable
        so the ``processes`` backend can ship them to workers -- the same
        contract Spark imposes on task closures.
        """
        wall0 = time.perf_counter()
        timed = self.backend.map_calls(fn, list(calls))
        wall = time.perf_counter() - wall0
        return self._finish_stage(name, timed, wall, metrics)

    def _finish_stage(
        self,
        name: str,
        timed: Sequence[TimedResult],
        wall: float,
        metrics: JobMetrics | None,
    ) -> tuple[list, StageMetrics]:
        results: list = []
        times: list[float] = []
        for result, elapsed in timed:
            results.append(result)
            simulated = elapsed + self.config.task_startup_s
            if self.config.straggler_prob > 0.0:
                with self._rng_lock:
                    straggles = self._rng.random() < self.config.straggler_prob
                if straggles:
                    simulated *= self.config.straggler_factor
            times.append(simulated)
        stage = StageMetrics(
            name=name,
            task_times=times,
            makespan=makespan(times, self.config.cores),
            wall_time=wall,
        )
        if metrics is not None:
            metrics.add_stage(stage)
        end = time.perf_counter()
        obs_trace.record_span(
            f"stage:{name}", end - wall, end,
            tasks=stage.num_tasks, makespan_s=stage.makespan,
        )
        return results, stage

    def run_driver(
        self, name: str, fn: Callable[[], T], metrics: JobMetrics | None = None
    ) -> T:
        """Run single-threaded driver-side work (merge, re-encode...)."""
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        stage = StageMetrics(
            name=name, task_times=[elapsed], makespan=elapsed, wall_time=elapsed
        )
        if metrics is not None:
            metrics.add_stage(stage)
        obs_trace.record_span(f"stage:{name}", t0, t0 + elapsed, tasks=1)
        return result

    # -- network model --------------------------------------------------------

    def shuffle_time(self, nbytes: int) -> float:
        cfg = self.config
        return cfg.shuffle_latency_s + nbytes / cfg.shuffle_bandwidth_bytes_s

    def client_transfer_time(self, nbytes: int) -> float:
        cfg = self.config
        return cfg.client_latency_s + nbytes / cfg.client_bandwidth_bytes_s

    def account_shuffle(self, metrics: JobMetrics, nbytes: int) -> None:
        metrics.shuffle_bytes += nbytes
        metrics.shuffle_time += self.shuffle_time(nbytes)

    def account_shuffle_parallel(
        self, metrics: JobMetrics, nbytes: int, receivers: int
    ) -> None:
        """Shuffle into ``receivers`` reduce tasks.

        ``shuffle_bandwidth_bytes_s`` is the *aggregate* fabric bandwidth;
        each receiving node pulls through a 1/cores share of it.  With
        fewer receivers than cores the transfer is bottlenecked on the few
        active links -- the effect the paper's group-inflation
        optimisation exists to fix (Section 4.5).
        """
        cfg = self.config
        per_node = cfg.shuffle_bandwidth_bytes_s / max(cfg.cores, 1)
        active = max(1, min(receivers, cfg.cores))
        metrics.shuffle_bytes += nbytes
        metrics.shuffle_time += cfg.shuffle_latency_s + (nbytes / active) / per_node

    def account_result_transfer(self, metrics: JobMetrics, nbytes: int) -> None:
        metrics.result_bytes += nbytes
        metrics.network_time += self.client_transfer_time(nbytes)

    def new_job(self) -> JobMetrics:
        return JobMetrics(job_startup=self.config.job_startup_s)
