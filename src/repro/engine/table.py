"""Partitioned columnar tables with contiguous row identifiers.

Seabed assigns consecutive row IDs at upload time (Section 4.2) so range
encoding can telescope ID lists.  A :class:`Table` is a list of
:class:`Partition` objects; partition ``p`` holds rows with IDs
``[start_id, start_id + nrows)`` and those intervals tile the table's ID
space without gaps.

Columns are numpy arrays: ``int64`` plaintext / dictionary codes,
``uint64`` ASHE or DET ciphertexts, 2-D ``uint64`` ORE trit words, or
``object`` arrays of Python big-ints for Paillier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import ExecutionError


@dataclass
class Partition:
    """One horizontal slice of a table.

    ``ref`` is set when the partition's columns are memory-mapped views of
    a persistent store (:mod:`repro.engine.store`): a small picklable
    ``(path, index)`` descriptor that workers resolve locally, so stage
    dispatch ships the descriptor instead of the column payloads.
    """

    columns: dict[str, np.ndarray]
    start_id: int
    ref: Any = None  # repro.engine.store.PartitionRef | None

    def __post_init__(self) -> None:
        lengths = {name: len(arr) for name, arr in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise ExecutionError(f"ragged partition columns: {lengths}")

    @property
    def nrows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(
                f"partition has no column {name!r}; available: {sorted(self.columns)}"
            ) from None

    def memory_bytes(self) -> int:
        return sum(_array_bytes(a) for a in self.columns.values())


class Table:
    """A named, partitioned, columnar dataset.

    ``store_path`` names the persistent store the partitions were
    memory-mapped from (None for purely in-memory tables) and
    ``store_generation`` the store's generation counter at the moment
    the table was opened -- the snapshot every partition ref of this
    table resolves against, no matter how far the store advances.

    ``zone_maps``, when present, is the per-partition zone-map statistics
    list (aligned with ``partitions``; entries may be None) parsed from
    the store manifest -- what the server's pruning planner consults
    before dispatching a stage (:mod:`repro.index`).
    """

    def __init__(
        self,
        name: str,
        partitions: list[Partition],
        store_path: str | None = None,
        store_generation: int | None = None,
        zone_maps: list[dict | None] | None = None,
    ):
        self.name = name
        self.partitions = partitions
        self.store_path = store_path
        self.store_generation = store_generation
        if zone_maps is not None and len(zone_maps) != len(partitions):
            raise ExecutionError(
                f"table {name!r}: {len(zone_maps)} zone maps for "
                f"{len(partitions)} partitions"
            )
        self.zone_maps = zone_maps
        self._validate()

    def _validate(self) -> None:
        names = None
        next_id = None
        for p in self.partitions:
            if names is None:
                names = set(p.columns)
            elif set(p.columns) != names:
                raise ExecutionError(f"partition column mismatch in table {self.name!r}")
            if next_id is not None and p.start_id != next_id:
                raise ExecutionError(
                    f"partition IDs not contiguous in table {self.name!r}: "
                    f"expected start {next_id}, got {p.start_id}"
                )
            next_id = p.start_id + p.nrows

    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Mapping[str, np.ndarray],
        num_partitions: int = 8,
        base_id: int = 0,
    ) -> "Table":
        """Split columns into ``num_partitions`` roughly equal slices."""
        if not columns:
            raise ExecutionError("a table needs at least one column")
        nrows = len(next(iter(columns.values())))
        for cname, arr in columns.items():
            if len(arr) != nrows:
                raise ExecutionError(
                    f"column {cname!r} has {len(arr)} rows, expected {nrows}"
                )
        num_partitions = max(1, min(num_partitions, max(nrows, 1)))
        bounds = np.linspace(0, nrows, num_partitions + 1).astype(np.int64)
        partitions = []
        for i in range(num_partitions):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            partitions.append(
                Partition(
                    columns={cname: arr[lo:hi] for cname, arr in columns.items()},
                    start_id=base_id + lo,
                )
            )
        return cls(name, partitions)

    # -- introspection -------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return sum(p.nrows for p in self.partitions)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def column_names(self) -> list[str]:
        if not self.partitions:
            return []
        return sorted(self.partitions[0].columns)

    @property
    def base_id(self) -> int:
        return self.partitions[0].start_id if self.partitions else 0

    @property
    def end_id(self) -> int:
        """One past the last row ID: the high-water mark appends continue
        from (partition intervals tile the ID space without gaps)."""
        last = self.partitions[-1] if self.partitions else None
        return last.start_id + last.nrows if last is not None else 0

    def column(self, name: str) -> np.ndarray:
        """Concatenate one column across partitions (test/debug helper)."""
        parts = [p.column(name) for p in self.partitions]
        if not parts:
            raise ExecutionError(f"table {self.name!r} has no partitions")
        return np.concatenate(parts)

    def memory_bytes(self) -> int:
        return sum(p.memory_bytes() for p in self.partitions)

    def repartition(self, num_partitions: int) -> "Table":
        columns = {name: self.column(name) for name in self.column_names}
        return Table.from_columns(
            self.name, columns, num_partitions=num_partitions, base_id=self.base_id
        )

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"partitions={self.num_partitions}, columns={self.column_names})"
        )


def _array_bytes(arr: np.ndarray) -> int:
    """In-memory footprint, including big-int payloads in object arrays."""
    if arr.dtype == object:
        # Pointer array plus the Python ints themselves.
        return arr.nbytes + sum(
            (int(x).bit_length() + 7) // 8 + 28 for x in arr.ravel().tolist()
        )
    return arr.nbytes


def concat_tables(name: str, tables: Iterable[Table]) -> Table:
    """Append tables with identical schemas (used by streaming uploads)."""
    tables = list(tables)
    if not tables:
        raise ExecutionError("no tables to concatenate")
    names = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != names:
            raise ExecutionError("schema mismatch in concat_tables")
    columns = {n: np.concatenate([t.column(n) for t in tables]) for n in names}
    total_parts = sum(t.num_partitions for t in tables)
    return Table.from_columns(name, columns, num_partitions=total_parts,
                              base_id=tables[0].base_id)
