"""Process-isolated worker transport: spawn, call, kill, detect death.

The sharded tier (:mod:`repro.shard`) runs each shard's server in its
own OS process so that a crash -- injected by the fail-point machinery
below, or real -- takes down exactly one shard and the coordinator can
observe it as a dead pipe rather than a poisoned interpreter.  This
module is the generic half: a request/reply loop over a
``multiprocessing`` pipe, with nothing shard-specific in it.

Protocol: the client sends ``(req_id, method, kwargs)``; the server
replies ``(req_id, "ok", result)`` or ``(req_id, "err", (type_name,
message))``.  Calls are serialised per handle with a lock, so a handle
is safe to share across the coordinator's scatter threads (each shard
gets its own handle, so cross-shard calls still overlap).

Tracing rides the same protocol without changing its shape for
untraced peers: when the caller has an ambient :mod:`repro.obs.trace`
span, :meth:`WorkerHandle.call` attaches its context under the reserved
``__trace__`` kwarg; :func:`serve` pops it, runs the handler inside a
``worker:<method>`` child span, and returns the worker-side spans as an
optional fourth reply element, which the caller ingests into its own
tracer.  A peer that sends no ``__trace__`` (or replies with the plain
three-tuple) is handled identically to one that predates tracing --
version skew degrades to a local-only trace, never an error.

Failure model: a worker that dies mid-call surfaces as
:class:`WorkerDied` (an :class:`~repro.errors.ExecutionError`), raised
from ``EOFError``/``BrokenPipeError`` or from a dead-process check --
never as a hang.  Remote exceptions of ordinary kinds are re-raised
client-side as :class:`RemoteError` carrying the remote type name, so a
shard-side ``StorageError`` is distinguishable from transport loss.

Fail points: ``arm_exit(method, after)`` arms the *server* loop to call
``os._exit(70)`` immediately before replying to the ``after``-th
subsequent invocation of ``method`` -- the same hard-kill style the
store's crash fail points use, simulating a machine loss at the worst
moment (work done, reply lost).
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from multiprocessing import Pipe, Process, connection
from typing import Any, Callable, Mapping

from repro.errors import ExecutionError
from repro.obs import trace as obs_trace

#: Exit status for fail-point kills (matches the store's crash points).
CRASH_STATUS = 70

# Live handles, reaped at interpreter exit.  Workers are non-daemonic
# (they may run process pools), so multiprocessing's own atexit hook
# would *join* them -- and a parent that crashed before shutting its
# workers down would hang on workers still blocked in recv().  This
# hook registers later, therefore runs earlier (LIFO), and kills every
# surviving worker first.
_LIVE_HANDLES: "weakref.WeakSet[WorkerHandle]" = weakref.WeakSet()


@atexit.register
def _reap_workers() -> None:
    for handle in list(_LIVE_HANDLES):
        try:
            handle.kill()
        except Exception:  # noqa: BLE001 -- best-effort at shutdown
            pass


class WorkerDied(ExecutionError):
    """The worker process died before replying (transport-level loss)."""


class RemoteError(ExecutionError):
    """The worker raised an ordinary exception while serving a call."""

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


def serve(conn: connection.Connection, handlers: Mapping[str, Callable[..., Any]]) -> None:
    """Run a worker's request loop until ``shutdown`` or a closed pipe.

    ``handlers`` maps method names to callables invoked as
    ``handler(**kwargs)``.  Two methods are built in: ``__arm_exit__``
    (install a fail point) and ``shutdown`` (clean exit; a handler named
    ``shutdown`` runs first if provided).
    """
    armed: dict[str, int] = {}
    while True:
        try:
            req_id, method, kwargs = conn.recv()
        except (EOFError, OSError):
            return  # coordinator went away; nothing to reply to
        trace_ctx = kwargs.pop("__trace__", None)
        if method == "__arm_exit__":
            armed[kwargs["method"]] = int(kwargs["after"])
            conn.send((req_id, "ok", None))
            continue
        handler = handlers.get(method)
        if handler is None and method != "shutdown":
            conn.send((req_id, "err", ("ExecutionError", f"unknown method {method!r}")))
            continue
        trace_id = None
        try:
            if trace_ctx is not None and obs_trace.enabled():
                with obs_trace.continue_context(trace_ctx):
                    with obs_trace.span(f"worker:{method}") as sp:
                        if sp is not None:
                            trace_id = sp.trace_id
                        result = handler(**kwargs) if handler is not None else None
            else:
                result = handler(**kwargs) if handler is not None else None
        except BaseException as exc:  # noqa: BLE001 -- report, don't die
            conn.send((req_id, "err", (type(exc).__name__, str(exc))))
            continue
        if method in armed:
            armed[method] -= 1
            if armed[method] <= 0:
                os._exit(CRASH_STATUS)  # die with the reply unsent
        if trace_id is not None:
            spans = [s.to_dict() for s in obs_trace.get_tracer().take(trace_id)]
            conn.send((req_id, "ok", result, spans))
        else:
            conn.send((req_id, "ok", result))
        if method == "shutdown":
            return


class WorkerHandle:
    """Client side of one worker process.

    ``main`` is a top-level function invoked in the child as
    ``main(conn, **spawn_kwargs)``; it is expected to call :func:`serve`.
    The parent keeps the other pipe end and drives the protocol.
    """

    def __init__(self, name: str, main: Callable[..., None], **spawn_kwargs: Any):
        self.name = name
        parent, child = Pipe()
        self._conn = parent
        self._lock = threading.Lock()
        self._req_id = 0
        # Not daemonic: workers may run process-pool backends internally,
        # and daemonic processes cannot have children.  Orphan safety
        # comes from the serve loop instead -- when the parent dies, its
        # pipe end closes and the loop exits on EOF.
        self.process = Process(
            target=main,
            args=(child,),
            kwargs=spawn_kwargs,
            name=name,
            daemon=False,
        )
        self.process.start()
        child.close()  # the child's copy lives in the child
        _LIVE_HANDLES.add(self)

    @property
    def alive(self) -> bool:
        try:
            return self.process.is_alive()
        except ValueError:
            return False  # process object released after death

    def call(self, method: str, /, **kwargs: Any) -> Any:
        """Invoke ``method`` on the worker and wait for its reply."""
        ctx = obs_trace.current_context()
        if ctx is not None:
            kwargs = {**kwargs, "__trace__": ctx}
        with self._lock:
            self._req_id += 1
            req_id = self._req_id
            try:
                self._conn.send((req_id, method, kwargs))
                reply = self._conn.recv()
                reply_id, status, payload = reply[0], reply[1], reply[2]
                if len(reply) > 3:  # worker-side spans, piggybacked home
                    obs_trace.get_tracer().ingest(reply[3])
            except (EOFError, BrokenPipeError, OSError) as exc:
                # The pipe fd closes a beat before the child becomes
                # reapable; join it so ``alive`` reads False (and the
                # zombie is collected) by the time callers handle this.
                # Release our end of the pipe too: a worker that dies
                # during the handshake used to leak the parent-side fd
                # for the handle's lifetime (one fd pair per respawn).
                self._release()
                raise WorkerDied(
                    f"worker {self.name!r} died during {method!r}"
                ) from exc
        if reply_id != req_id:
            raise ExecutionError(
                f"worker {self.name!r} replied out of order "
                f"({reply_id} != {req_id})"
            )
        if status == "err":
            remote_type, message = payload
            raise RemoteError(remote_type, message)
        return payload

    def arm_exit(self, method: str, after: int = 1) -> None:
        """Arm the worker to ``os._exit`` before replying to the
        ``after``-th subsequent call of ``method`` (fail-point injection)."""
        self.call("__arm_exit__", method=method, after=after)

    def _release(self) -> None:
        """Close the parent-side pipe fd and collect the child process
        object; idempotent, tolerant of an already-closed handle."""
        try:
            self.process.join(timeout=5)
        except ValueError:
            pass  # process object already released
        try:
            self._conn.close()
        except OSError:
            pass
        try:
            if not self.process.is_alive():
                self.process.close()
        except ValueError:
            pass  # already closed, or still winding down

    def kill(self) -> None:
        """Hard-kill the worker (SIGKILL); safe to call twice."""
        try:
            if self.process.is_alive():
                self.process.kill()
        except ValueError:
            return  # process object already closed by a prior release
        self._release()

    def shutdown(self) -> None:
        """Ask the worker to exit cleanly; falls back to :meth:`kill`."""
        try:
            self.call("shutdown")
        except (WorkerDied, RemoteError, ExecutionError, OSError):
            pass
        try:
            if self.process.is_alive():
                self.process.join(timeout=5)
            if self.process.is_alive():
                self.process.kill()
        except ValueError:
            return  # already released
        self._release()
