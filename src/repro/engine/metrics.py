"""Timing and volume accounting for simulated jobs.

A job is a sequence of stages (map, reduce, driver work) plus network
transfers.  Stage task durations are *measured* (the tasks really run);
the stage makespan is *simulated* by placing those durations onto the
configured number of cores.  This split is what lets a 2-core laptop
reproduce the paper's 10-to-100-core scaling curves (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageMetrics:
    """One executed stage.

    ``task_times`` and ``makespan`` belong to the *simulated* schedule;
    ``wall_time`` is the real elapsed time the stage took on this host,
    which depends on the cluster's execution backend (serial / threads /
    processes) and the physical core count.

    ``partitions_total``/``partitions_skipped`` record zone-map pruning
    on partition-mapping stages: of the table's ``partitions_total``
    partitions, how many the index proved irrelevant and never
    dispatched.  Reduce and driver stages leave both at 0; a map stage
    with pruning disabled (or nothing prunable) reports its full
    partition count with 0 skipped.
    """

    name: str
    task_times: list[float]
    makespan: float
    wall_time: float = 0.0
    partitions_total: int = 0
    partitions_skipped: int = 0

    @property
    def num_tasks(self) -> int:
        return len(self.task_times)

    @property
    def total_cpu(self) -> float:
        return sum(self.task_times)


@dataclass
class JobMetrics:
    """Accumulated metrics for one query execution."""

    stages: list[StageMetrics] = field(default_factory=list)
    job_startup: float = 0.0
    shuffle_bytes: int = 0
    shuffle_time: float = 0.0
    result_bytes: int = 0
    network_time: float = 0.0  # driver -> client transfer
    client_time: float = 0.0  # decryption + post-processing at the proxy
    # Sharded scatter-gather accounting (repro.shard): of the table's
    # ``shards_total`` shards, how many the ring router / zone-map rollups
    # proved irrelevant and never contacted, and how many shard stages had
    # to be retried on a replica after their primary worker died.
    shards_total: int = 0
    shards_skipped: int = 0
    failovers: int = 0
    # Service-layer accounting (repro.net): time the request sat in the
    # server's admission queue before a slot opened, and the *measured*
    # client-side round trip spent on the wire (encode + socket + decode)
    # beyond the executed job itself.  Both stay 0.0 for in-process
    # transports.
    queue_wait: float = 0.0
    wire_time: float = 0.0

    def add_stage(self, stage: StageMetrics) -> None:
        self.stages.append(stage)

    @property
    def server_time(self) -> float:
        """Simulated wall time spent on the cluster."""
        return self.job_startup + sum(s.makespan for s in self.stages) + self.shuffle_time

    @property
    def real_time(self) -> float:
        """Measured wall-clock actually spent executing stages on this
        host (no simulation, no modelled network)."""
        return sum(s.wall_time for s in self.stages)

    @property
    def total_time(self) -> float:
        """End-to-end latency as the client experiences it."""
        return self.server_time + self.network_time + self.client_time

    @property
    def partitions_total(self) -> int:
        """Partitions the job's map stages would touch without pruning."""
        return sum(s.partitions_total for s in self.stages)

    @property
    def partitions_skipped(self) -> int:
        """Partitions the zone-map index let the job skip entirely."""
        return sum(s.partitions_skipped for s in self.stages)

    def stage(self, name: str) -> StageMetrics:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage named {name!r}")

    def summary(self) -> dict[str, float]:
        """Flat key/value rendering of the job's accounting.

        Optional key groups appear all-or-nothing so consumers can rely
        on the key *set*, not just the values:

        - ``shards_total``/``shards_skipped``/``failovers`` appear only
          for scatter-gathered jobs (``shards_total > 0``).
        - ``queue_wait_s``/``wire_s`` appear only for jobs that crossed
          the service boundary, and always as a *pair*: a remote call
          with measured ``wire_time`` but zero ``queue_wait`` (or the
          reverse -- e.g. a queued request whose round trip was never
          measured) still emits **both** keys, the missing one as 0.0.
          In-process transports, where both are zero, emit neither.
        """
        return {
            "server_s": self.server_time,
            "real_s": self.real_time,
            "network_s": self.network_time,
            "client_s": self.client_time,
            "total_s": self.total_time,
            "result_bytes": float(self.result_bytes),
            "shuffle_bytes": float(self.shuffle_bytes),
            "partitions_total": float(self.partitions_total),
            "partitions_skipped": float(self.partitions_skipped),
        } | (
            # Shard counters only appear for scatter-gathered jobs, so
            # single-store summaries keep their exact key set.
            {
                "shards_total": float(self.shards_total),
                "shards_skipped": float(self.shards_skipped),
                "failovers": float(self.failovers),
            }
            if self.shards_total
            else {}
        ) | (
            # Likewise, wire counters only appear for jobs that crossed
            # the service boundary.
            {
                "queue_wait_s": self.queue_wait,
                "wire_s": self.wire_time,
            }
            if self.queue_wait or self.wire_time
            else {}
        )
