"""Table serialisation and size accounting.

The paper stores tables in HDFS with protobuf serialisation and reports
per-dataset disk and in-memory sizes (Table 5).  This module provides the
equivalent: a compact self-describing binary format for partitioned
columnar tables, plus the size accounting used by the Table 5 benchmark.

Format (all integers little-endian):

    magic  "SBED"  | u16 version | u16 name_len | name bytes
    u32 num_partitions
    per partition: u64 start_id | u32 num_columns
      per column: u16 name_len | name | u8 dtype_tag | u8 ndim |
                  u32 rows | u32 width | u8 compressed | u64 payload_len |
                  payload

dtype tags: 0=int64, 1=uint64, 2=float64, 3=object (varint-framed
big-ints, for Paillier ciphertext columns), 4=bool.
"""

from __future__ import annotations

import errno
import io
import json
import os
import struct
import warnings
import zlib

import numpy as np

from repro.engine.table import Partition, Table
from repro.errors import ExecutionError

_MAGIC = b"SBED"
_VERSION = 1

# Errnos meaning "this filesystem does not support fsync on a directory
# fd" (overlayfs and some container volume drivers return these).  Not
# listed -- and therefore still fatal -- are real I/O failures like EIO.
_FSYNC_UNSUPPORTED = frozenset(
    e for e in (
        getattr(errno, "ENOTSUP", None),
        getattr(errno, "EOPNOTSUPP", None),
        errno.EINVAL,
    )
    if e is not None
)

#: Count of directory fsyncs skipped because the filesystem rejected
#: them; tests and operators can check this to see durability degraded.
FSYNC_DIR_FALLBACKS = 0

_warned_fsync_dirs: set[str] = set()


def fsync_dir(path: str) -> None:
    """fsync a directory so renames/creates inside it are durable.

    Filesystems common in CI containers (overlayfs, some network mounts)
    reject ``fsync`` on directory fds with ``EINVAL``/``ENOTSUP``.  Losing
    the directory-entry sync there only weakens durability against power
    loss -- the rename itself is still atomic -- so degrade to a one-time
    warning per directory instead of failing the append.
    """
    global FSYNC_DIR_FALLBACKS
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError as exc:
        if exc.errno not in _FSYNC_UNSUPPORTED:
            raise
        FSYNC_DIR_FALLBACKS += 1
        if path not in _warned_fsync_dirs:
            _warned_fsync_dirs.add(path)
            warnings.warn(
                f"filesystem rejects fsync on directory {path!r} "
                f"({errno.errorcode.get(exc.errno, exc.errno)}); renames "
                "remain atomic but are not durable against power loss",
                RuntimeWarning,
                stacklevel=2,
            )
    finally:
        os.close(fd)


def atomic_write_json(target: str, payload: dict) -> None:
    """Durably publish a JSON document: temp file + fsync + ``os.replace``
    + directory fsync.  Readers see the old document or the new one in
    full, never a partial write -- this is the commit primitive both the
    partition-store manifest and the client-state sidecar rely on."""
    tmp = target + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    fsync_dir(os.path.dirname(target) or ".")

_DTYPE_TAGS: dict[str, int] = {"int64": 0, "uint64": 1, "float64": 2, "object": 3, "bool": 4}
_TAG_DTYPES = {v: k for k, v in _DTYPE_TAGS.items()}


def encode_object_column(arr: np.ndarray) -> bytes:
    """Length-prefixed big-endian big-ints (sign carried in a lead byte).

    Shared with :mod:`repro.engine.store`, which persists Paillier
    ciphertext columns in this framing (big-ints cannot be memory-mapped).
    """
    out = bytearray()
    for x in arr.ravel().tolist():
        x = int(x)
        sign = 1 if x < 0 else 0
        raw = abs(x).to_bytes((abs(x).bit_length() + 7) // 8 or 1, "big")
        out.extend(struct.pack("<BI", sign, len(raw)))
        out.extend(raw)
    return bytes(out)


def decode_object_column(data: bytes, rows: int) -> np.ndarray:
    out = np.empty(rows, dtype=object)
    offset = 0
    for j in range(rows):
        sign, length = struct.unpack_from("<BI", data, offset)
        offset += 5
        value = int.from_bytes(data[offset : offset + length], "big")
        offset += length
        out[j] = -value if sign else value
    return out


def serialize_table(table: Table, compress: bool = False) -> bytes:
    """Serialise a table; ``compress`` applies per-column Deflate."""
    buf = io.BytesIO()
    name = table.name.encode()
    buf.write(_MAGIC)
    buf.write(struct.pack("<HH", _VERSION, len(name)))
    buf.write(name)
    buf.write(struct.pack("<I", table.num_partitions))
    for part in table.partitions:
        buf.write(struct.pack("<QI", part.start_id, len(part.columns)))
        for cname in sorted(part.columns):
            arr = part.columns[cname]
            dtype_name = arr.dtype.name if arr.dtype != object else "object"
            if dtype_name not in _DTYPE_TAGS:
                raise ExecutionError(f"unsupported column dtype {arr.dtype} in {cname!r}")
            if arr.dtype == object:
                payload = encode_object_column(arr)
                width = 1
                rows = len(arr)
            else:
                payload = np.ascontiguousarray(arr).tobytes()
                rows = arr.shape[0]
                width = 1 if arr.ndim == 1 else arr.shape[1]
            compressed = 0
            if compress:
                packed = zlib.compress(payload, 1)
                if len(packed) < len(payload):
                    payload, compressed = packed, 1
            encoded_name = cname.encode()
            buf.write(struct.pack("<H", len(encoded_name)))
            buf.write(encoded_name)
            buf.write(
                struct.pack(
                    "<BBIIBQ",
                    _DTYPE_TAGS[dtype_name],
                    arr.ndim,
                    rows,
                    width,
                    compressed,
                    len(payload),
                )
            )
            buf.write(payload)
    return buf.getvalue()


def deserialize_table(data: bytes) -> Table:
    buf = io.BytesIO(data)
    if buf.read(4) != _MAGIC:
        raise ExecutionError("not a serialized Seabed table")
    version, name_len = struct.unpack("<HH", buf.read(4))
    if version != _VERSION:
        raise ExecutionError(f"unsupported table format version {version}")
    name = buf.read(name_len).decode()
    (num_partitions,) = struct.unpack("<I", buf.read(4))
    partitions = []
    for _ in range(num_partitions):
        start_id, num_columns = struct.unpack("<QI", buf.read(12))
        columns: dict[str, np.ndarray] = {}
        for _ in range(num_columns):
            (cname_len,) = struct.unpack("<H", buf.read(2))
            cname = buf.read(cname_len).decode()
            tag, ndim, rows, width, compressed, payload_len = struct.unpack(
                "<BBIIBQ", buf.read(19)
            )
            payload = buf.read(payload_len)
            if compressed:
                payload = zlib.decompress(payload)
            dtype_name = _TAG_DTYPES[tag]
            if dtype_name == "object":
                arr = decode_object_column(payload, rows)
            else:
                arr = np.frombuffer(payload, dtype=np.dtype(dtype_name)).copy()
                if ndim == 2:
                    arr = arr.reshape(rows, width)
            columns[cname] = arr
        partitions.append(Partition(columns=columns, start_id=start_id))
    return Table(name, partitions)


def disk_size(table: Table, compress: bool = False) -> int:
    """Bytes the table occupies in cloud storage (Table 5, "Disk size")."""
    return len(serialize_table(table, compress=compress))


def memory_size(table: Table) -> int:
    """Bytes the table occupies in worker memory (Table 5, "Memory size").

    Adds a per-partition overhead factor approximating JVM object headers
    in the paper's Spark deployment (their in-memory sizes run ~1.5-3x the
    on-disk sizes).
    """
    raw = table.memory_bytes()
    per_partition_overhead = 64 * 1024
    return int(raw * 1.35) + per_partition_overhead * table.num_partitions
