"""Pluggable parallel execution backends for the simulated cluster.

The paper's prototype gets its throughput from Spark running map tasks
concurrently on real cores (Figures 6-7 report near-linear scaling of
encrypted aggregation).  Historically this repository executed every task
serially in a Python loop and only *simulated* the parallel makespan.
The backends here make the execution itself parallel while the placement
model stays exactly as before: per-task wall times are still measured
inside the worker and still feed the FIFO least-loaded-core schedule, so
the simulated makespan is backend-independent (modulo timing noise).

Three backends are provided:

- ``serial`` -- the original behaviour and the default; tasks run one
  after another on the calling thread.  Deterministic, zero overhead,
  and what every figure benchmark expects.
- ``threads`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`.
  The hot kernels (numpy reductions, ``reduceat``, packed-ORE compares)
  release the GIL, so stages with several partitions genuinely overlap
  on multi-core hosts.
- ``processes`` -- a :class:`~concurrent.futures.ProcessPoolExecutor`
  for CPU-bound pure-Python work (Paillier big-int products, PRF loops)
  that the GIL would otherwise serialise.  Task functions must be
  top-level (picklable) and take picklable arguments; the server's stage
  bodies are written that way (see :mod:`repro.core.server`).

Pools are created lazily on first use and kept alive for the lifetime of
the backend object -- warm across every query the session runs -- and
stages dispatch in *chunks*: tasks are grouped into at most
``2 x workers`` contiguous chunks per stage, so dispatch overhead is a
handful of ``submit`` calls (and, for processes, pickle round-trips) per
stage instead of one per task.  Per-task times are still measured
individually inside the chunk, so the simulated makespan is unchanged.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence, Tuple, TypeVar

from repro.errors import ExecutionError

T = TypeVar("T")

#: (task result, measured task seconds) -- what every backend returns
#: per task.  The measurement happens *inside* the worker so it captures
#: task compute only, never queueing or pickling overhead; that is the
#: quantity the makespan simulation schedules.
TimedResult = Tuple[Any, float]


def default_workers() -> int:
    """One worker per host CPU (the Spark executor default)."""
    return os.cpu_count() or 1


def pickled_nbytes(obj: Any) -> int:
    """Bytes ``obj`` costs to ship across a process boundary.

    Benchmarks and the dispatch tracker use this to quantify stage
    dispatch volume -- the payload a real cluster would serialise to its
    executors (store-backed partitions ship as tiny refs instead of
    column data, see :mod:`repro.engine.store`).
    """
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def timed_call(
    fn: Callable[..., T], args: tuple, timer: Callable[[], float] = time.perf_counter
) -> TimedResult:
    """Run ``fn(*args)`` and measure it.  Top-level so process pools can
    pickle it as the common task entry point.

    ``timer`` is the clock the measurement uses.  The serial backend
    keeps ``perf_counter`` (bit-for-bit the seed behaviour); the pooled
    backends use ``thread_time`` so that on an oversubscribed host a
    task descheduled in favour of its siblings is not charged for the
    wait -- the simulated schedule wants task *compute*, and under
    serial execution the two clocks agree.
    """
    t0 = timer()
    result = fn(*args)
    return result, timer() - t0


def _call_thunk(thunk: Callable[[], T]) -> T:
    """Adapter turning the legacy zero-arg-callable API into a call."""
    return thunk()


def run_call_chunk(
    fn: Callable[..., T],
    chunk: Sequence[tuple],
    timer: Callable[[], float] = time.perf_counter,
) -> list[TimedResult]:
    """Run a contiguous chunk of calls inside one pool task.

    Top-level so process pools can pickle it.  Each call is still timed
    individually -- the makespan simulation schedules per-task compute,
    not per-chunk -- but the pool pays one submit/pickle round-trip for
    the whole chunk.
    """
    return [timed_call(fn, call, timer) for call in chunk]


#: Chunks per unit of *host* parallelism when splitting a stage for pooled
#: dispatch.  2x gives the pool slack to rebalance when task durations are
#: uneven while still collapsing an N-task stage into a handful of
#: submits.  Chunking follows the host CPU count, not the configured
#: worker count: a pool of 8 workers on a 1-core host can still only run
#: one chunk at a time, and extra chunks are pure dispatch overhead.
CHUNKS_PER_WORKER = 2


class ExecutionBackend:
    """Runs one stage's tasks and reports per-task wall time.

    Subclasses implement :meth:`map_calls`; :meth:`run_tasks` adapts the
    legacy closure-based stage API on top of it.
    """

    name: str = "?"
    #: whether :meth:`run_tasks` may hand closures to :meth:`map_calls`
    #: (process pools cannot pickle closures, so they fall back to
    #: in-process execution for that API).
    supports_closures: bool = True
    #: per-task clock; see :func:`timed_call`.
    timer: Callable[[], float] = staticmethod(time.perf_counter)

    def __init__(self, workers: int | None = None):
        self.workers = int(workers) if workers else default_workers()
        if self.workers < 1:
            raise ExecutionError(
                f"execution backend needs at least one worker, got {self.workers}"
            )

    # -- core dispatch -------------------------------------------------------

    def map_calls(
        self, fn: Callable[..., T], calls: Sequence[tuple]
    ) -> list[TimedResult]:
        """Run ``fn(*call)`` for every call, in order.

        ``fn`` must be a top-level function and every call tuple must be
        picklable for the ``processes`` backend; ``serial`` and
        ``threads`` accept anything callable.
        """
        raise NotImplementedError

    def run_tasks(self, thunks: Sequence[Callable[[], T]]) -> list[TimedResult]:
        """Legacy API: run zero-arg callables (closures allowed)."""
        if not self.supports_closures:
            return [timed_call(_call_thunk, (t,), self.timer) for t in thunks]
        return self.map_calls(_call_thunk, [(t,) for t in thunks])

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} workers={self.workers}>"


class SerialBackend(ExecutionBackend):
    """The original loop: every task on the calling thread, in order."""

    name = "serial"

    def __init__(self, workers: int | None = None):
        super().__init__(workers or 1)

    def map_calls(
        self, fn: Callable[..., T], calls: Sequence[tuple]
    ) -> list[TimedResult]:
        return [timed_call(fn, call, self.timer) for call in calls]


class _PoolBackend(ExecutionBackend):
    """Shared lazy-pool plumbing for the two executor-based backends."""

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self._executor: Executor | None = None
        # query_many() can drive stages from several threads at once; the
        # lock keeps a cold pool from being created twice (the loser's
        # executor would leak beyond close()'s reach).
        self._pool_lock = threading.Lock()

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    @property
    def pool(self) -> Executor:
        if self._executor is None:
            with self._pool_lock:
                if self._executor is None:
                    self._executor = self._make_pool()
        return self._executor

    def map_calls(
        self, fn: Callable[..., T], calls: Sequence[tuple]
    ) -> list[TimedResult]:
        calls = list(calls)
        if len(calls) <= 1:
            # A one-task stage gains nothing from the pool; skip the
            # dispatch overhead (and, for processes, the pickling).
            return [timed_call(fn, call, self.timer) for call in calls]
        futures = [
            self.pool.submit(run_call_chunk, fn, chunk, self.timer)
            for chunk in self._chunk(calls)
        ]
        out: list[TimedResult] = []
        for f in futures:
            out.extend(f.result())
        return out

    def _chunk(self, calls: list[tuple]) -> list[list[tuple]]:
        """Split a stage into contiguous, near-equal chunks
        (order-preserving); see :data:`CHUNKS_PER_WORKER`.

        A stage no larger than the pool keeps one call per chunk: every
        task gets its own worker immediately (tasks that block on each
        other -- barriers, pipes -- rely on that), and a handful of
        submits costs nothing.  Only stages that outnumber the workers
        are packed down to amortise dispatch.
        """
        if len(calls) <= self.workers:
            return [[call] for call in calls]
        parallelism = min(self.workers, os.cpu_count() or 1)
        # With one usable CPU there is nothing to rebalance between
        # chunks, so the whole stage ships as a single pool task and the
        # dispatch cost collapses to one submit + one wakeup.
        n_chunks = 1 if parallelism == 1 else min(
            len(calls), parallelism * CHUNKS_PER_WORKER
        )
        base, extra = divmod(len(calls), n_chunks)
        chunks: list[list[tuple]] = []
        start = 0
        for c in range(n_chunks):
            size = base + (1 if c < extra else 0)
            chunks.append(calls[start : start + size])
            start += size
        return chunks

    def close(self) -> None:
        with self._pool_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


class ThreadBackend(_PoolBackend):
    """Thread pool; effective because the numpy kernels release the GIL."""

    name = "threads"
    timer = staticmethod(time.thread_time)

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="seabed-worker"
        )


class ProcessBackend(_PoolBackend):
    """Process pool for CPU-bound pure-Python stages (PRF, Paillier).

    Task functions and arguments cross a pickle boundary, which is the
    same constraint a real Spark deployment puts on its closures; the
    server's stage bodies are top-level functions for exactly this
    reason.  Closure-based stages (:meth:`run_tasks`) transparently fall
    back to in-process execution.
    """

    name = "processes"
    supports_closures = False
    timer = staticmethod(time.thread_time)

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        #: when True, every pooled stage adds its pickled call-tuple sizes
        #: to ``dispatched_bytes`` -- the benchmark hook quantifying what
        #: this backend actually ships to workers per stage.
        self.track_dispatch = False
        self.dispatched_bytes = 0
        # query_many() drives stages from several threads; `+=` on the
        # counter is not atomic, so bumps go through a lock (one
        # acquisition per stage, not per task).
        self._dispatch_lock = threading.Lock()

    def map_calls(
        self, fn: Callable[..., T], calls: Sequence[tuple]
    ) -> list[TimedResult]:
        calls = list(calls)
        if self.track_dispatch and len(calls) > 1:
            stage_bytes = sum(pickled_nbytes(call) for call in calls)
            with self._dispatch_lock:
                self.dispatched_bytes += stage_bytes
        return super().map_calls(fn, calls)

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)


BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def make_backend(name: str, workers: int | None = None) -> ExecutionBackend:
    """Instantiate a backend by name (``serial`` | ``threads`` | ``processes``)."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown execution backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls(workers)
