"""A minimal RDD-style API over the simulated cluster.

The Seabed query translator targets the Spark API (paper Table 2):
``table.filter(...).map(...).reduce(...)`` and ``reduceByKey``.  This
module provides exactly that surface over row-oriented partitions, so the
translation examples from the paper run verbatim in tests and examples.
The vectorised physical operators in :mod:`repro.core.server` remain the
hot path for benchmarks; the RDD layer trades speed for fidelity.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, TypeVar

from repro.engine.cluster import SimulatedCluster
from repro.engine.metrics import JobMetrics
from repro.engine.table import Table
from repro.errors import ExecutionError

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")


class RDD:
    """An eager, partitioned collection with Spark-like operations."""

    def __init__(self, cluster: SimulatedCluster, partitions: list[list[Any]],
                 metrics: JobMetrics | None = None):
        self._cluster = cluster
        self._partitions = partitions
        self.metrics = metrics if metrics is not None else cluster.new_job()

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_table(cls, cluster: SimulatedCluster, table: Table,
                   columns: list[str] | None = None) -> "RDD":
        """Rows become tuples ``(row_id, col0, col1, ...)``.

        The leading row ID mirrors Seabed's "ID preservation" rewrite
        (Table 2): the translator keeps the identifier column in every
        projection so ASHE aggregation stays decryptable.
        """
        columns = columns or [c for c in table.column_names]
        partitions = []
        for part in table.partitions:
            arrays = [part.column(c) for c in columns]
            rows = [
                (part.start_id + j, *(a[j] for a in arrays))
                for j in range(part.nrows)
            ]
            partitions.append(rows)
        return cls(cluster, partitions)

    @classmethod
    def parallelize(cls, cluster: SimulatedCluster, data: Iterable[Any],
                    num_partitions: int = 4) -> "RDD":
        items = list(data)
        if not items:
            return cls(cluster, [[]])
        num_partitions = max(1, min(num_partitions, len(items)))
        size = -(-len(items) // num_partitions)
        parts = [items[i : i + size] for i in range(0, len(items), size)]
        return cls(cluster, parts)

    # -- transformations -------------------------------------------------------

    def map(self, fn: Callable[[Any], U]) -> "RDD":
        return self._stage("map", lambda rows: [fn(r) for r in rows])

    def filter(self, fn: Callable[[Any], bool]) -> "RDD":
        return self._stage("filter", lambda rows: [r for r in rows if fn(r)])

    def flat_map(self, fn: Callable[[Any], Iterable[U]]) -> "RDD":
        return self._stage("flatMap", lambda rows: [x for r in rows for x in fn(r)])

    def map_partitions(self, fn: Callable[[list[Any]], list[U]]) -> "RDD":
        return self._stage("mapPartitions", fn)

    def _stage(self, name: str, fn: Callable[[list[Any]], list[Any]]) -> "RDD":
        tasks = [lambda rows=rows: fn(rows) for rows in self._partitions]
        results, _ = self._cluster.run_stage(name, tasks, self.metrics)
        return RDD(self._cluster, results, self.metrics)

    # -- actions ---------------------------------------------------------------

    def collect(self) -> list[Any]:
        return [r for rows in self._partitions for r in rows]

    def count(self) -> int:
        tasks = [lambda rows=rows: len(rows) for rows in self._partitions]
        results, _ = self._cluster.run_stage("count", tasks, self.metrics)
        return sum(results)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Two-level reduce: per-partition, then at the driver."""

        def reduce_partition(rows: list[Any]) -> list[Any]:
            if not rows:
                return []
            acc = rows[0]
            for r in rows[1:]:
                acc = fn(acc, r)
            return [acc]

        partials, _ = self._cluster.run_stage(
            "reduce",
            [lambda rows=rows: reduce_partition(rows) for rows in self._partitions],
            self.metrics,
        )
        flat = [p[0] for p in partials if p]
        if not flat:
            raise ExecutionError("reduce of an empty RDD")

        def driver_merge() -> Any:
            acc = flat[0]
            for x in flat[1:]:
                acc = fn(acc, x)
            return acc

        return self._cluster.run_driver("reduce-merge", driver_merge, self.metrics)

    def reduce_by_key(self, fn: Callable[[Any, Any], Any],
                      num_reducers: int | None = None) -> "RDD":
        """Hash-partitioned shuffle followed by per-reducer merges."""
        reducers = num_reducers or max(1, self._cluster.config.cores)

        def combine(rows: list[Any]) -> list[dict[Any, Any]]:
            buckets: list[dict[Any, Any]] = [dict() for _ in range(reducers)]
            for key, value in rows:
                bucket = buckets[hash(key) % reducers]
                bucket[key] = fn(bucket[key], value) if key in bucket else value
            return buckets

        map_out, _ = self._cluster.run_stage(
            "shuffle-map",
            [lambda rows=rows: combine(rows) for rows in self._partitions],
            self.metrics,
        )
        # Model shuffle volume: every (key, value) pair crossing the wire.
        shuffle_bytes = sum(
            32 * len(bucket) for buckets in map_out for bucket in buckets
        )
        self._cluster.account_shuffle(self.metrics, shuffle_bytes)

        def merge_reducer(idx: int) -> list[tuple[Any, Any]]:
            merged: dict[Any, Any] = {}
            for buckets in map_out:
                for key, value in buckets[idx].items():
                    merged[key] = fn(merged[key], value) if key in merged else value
            return list(merged.items())

        reduced, _ = self._cluster.run_stage(
            "shuffle-reduce",
            [lambda i=i: merge_reducer(i) for i in range(reducers)],
            self.metrics,
        )
        return RDD(self._cluster, reduced, self.metrics)

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)
