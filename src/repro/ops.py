"""Client-side operation counters.

A tiny thread-safe counter registry the proxy pipeline bumps at its
expensive choke points (``parse``, ``plan``, ``translate``) and at the
session layer (``prepare``, ``execute``, cache hits/misses).  Tests and
benchmarks use snapshots to *prove* claims like "re-executing a
:class:`~repro.core.session.PreparedQuery` performs zero planner and
translator work" instead of inferring them from timings.

Lives at the package top level (not ``repro.core``) so leaf modules like
the parser can bump counters without importing the core package, whose
``__init__`` pulls in the whole proxy pipeline.
"""

from __future__ import annotations

from collections import Counter
from threading import Lock


class OpCounter:
    """Monotonic named counters; cheap enough to leave on in production."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._counts: Counter[str] = Counter()

    def bump(self, op: str, n: int = 1) -> None:
        with self._lock:
            self._counts[op] += n

    def get(self, op: str) -> int:
        with self._lock:
            return self._counts[op]

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Per-op increments since ``before`` (a prior :meth:`snapshot`)."""
        now = self.snapshot()
        keys = set(now) | set(before)
        return {k: now.get(k, 0) - before.get(k, 0) for k in keys
                if now.get(k, 0) != before.get(k, 0)}

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


#: Process-wide counter instance the pipeline modules bump.
OPS = OpCounter()
