"""Client-side operation counters.

A tiny thread-safe counter registry the proxy pipeline bumps at its
expensive choke points (``parse``, ``plan``, ``translate``) and at the
session layer (``prepare``, ``execute``, cache hits/misses).  Tests and
benchmarks use snapshots to *prove* claims like "re-executing a
:class:`~repro.core.session.PreparedQuery` performs zero planner and
translator work" instead of inferring them from timings.

``OPS`` used to be one process-wide singleton, which concurrent sessions
(and the multi-tenant service, whose worker threads interleave tenants)
trampled.  It is now an *ambient* handle: by default every bump lands in
one shared default :class:`OpCounter` -- identical observable behaviour
-- but :func:`scoped` installs a private counter for the current
``contextvars`` context, so two sessions (or two service requests) can
each account their own pipeline work::

    with scoped() as mine:
        session.query(...)
        assert mine.get("translate") == 1   # nobody else's bumps

Every bump is additionally mirrored into the :mod:`repro.obs.metrics`
registry as ``seabed_client_ops_total{op=...}``, so a metrics scrape
sees the same counters the tests assert on.

Lives at the package top level (not ``repro.core``) so leaf modules like
the parser can bump counters without importing the core package, whose
``__init__`` pulls in the whole proxy pipeline.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from contextvars import ContextVar
from threading import Lock
from typing import Iterator

from repro.obs import metrics as _obs_metrics


class OpCounter:
    """Monotonic named counters; cheap enough to leave on in production."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._counts: Counter[str] = Counter()

    def bump(self, op: str, n: int = 1) -> None:
        with self._lock:
            self._counts[op] += n

    def get(self, op: str) -> int:
        with self._lock:
            return self._counts[op]

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Per-op increments since ``before`` (a prior :meth:`snapshot`)."""
        now = self.snapshot()
        keys = set(now) | set(before)
        return {k: now.get(k, 0) - before.get(k, 0) for k in keys
                if now.get(k, 0) != before.get(k, 0)}

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


#: The process-wide default counter (what ``OPS`` delegates to outside
#: any :func:`scoped` block).
DEFAULT_OPS = OpCounter()

_ACTIVE: ContextVar[OpCounter | None] = ContextVar("repro_ops_scope", default=None)

_OPS_TOTAL = _obs_metrics.get_registry().counter(
    "seabed_client_ops_total",
    "Client pipeline operations (parse/plan/translate/execute/cache).",
    labelnames=("op",),
)


@contextmanager
def scoped(counter: OpCounter | None = None) -> Iterator[OpCounter]:
    """Route ``OPS`` bumps in this context to a private counter.

    Yields the counter (a fresh one unless ``counter`` is given).  Scopes
    nest; threads spawned with ``contextvars.copy_context()`` inherit the
    scope, plain threads fall back to the shared default.
    """
    active = counter if counter is not None else OpCounter()
    token = _ACTIVE.set(active)
    try:
        yield active
    finally:
        _ACTIVE.reset(token)


class _AmbientOps:
    """The ``OPS`` handle: delegates to the scoped counter when one is
    active, else to :data:`DEFAULT_OPS`, and mirrors every bump into the
    metrics registry."""

    @staticmethod
    def _target() -> OpCounter:
        return _ACTIVE.get() or DEFAULT_OPS

    def bump(self, op: str, n: int = 1) -> None:
        self._target().bump(op, n)
        _OPS_TOTAL.inc(float(n), op=op)

    def get(self, op: str) -> int:
        return self._target().get(op)

    def snapshot(self) -> dict[str, int]:
        return self._target().snapshot()

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        return self._target().delta(before)

    def reset(self) -> None:
        self._target().reset()


#: Ambient counter handle the pipeline modules bump.
OPS = _AmbientOps()
