"""Skewed value distributions for workload generation.

The ad-analytics dimensions and the Big Data Benchmark URL popularity are
heavily skewed; enhanced SPLASHE's storage win (Section 3.4) exists
*because* of that skew.  These helpers produce bounded Zipf-like samples
with explicit probability vectors, so the planner's ``value_counts`` input
can be derived from the same distribution the generator used.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SeabedError


def zipf_probabilities(cardinality: int, exponent: float = 1.1) -> np.ndarray:
    """Normalised Zipf probabilities over ``cardinality`` ranks."""
    if cardinality < 1:
        raise SeabedError("cardinality must be positive")
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def zipf_choice(
    rng: np.random.Generator,
    cardinality: int,
    size: int,
    exponent: float = 1.1,
) -> np.ndarray:
    """Sample ``size`` codes in ``[0, cardinality)`` with Zipf skew."""
    return rng.choice(cardinality, size=size, p=zipf_probabilities(cardinality, exponent))


def expected_counts(
    cardinality: int, rows: int, exponent: float = 1.1
) -> dict[int, int]:
    """Expected per-code occurrence counts (planner ``value_counts``)."""
    probs = zipf_probabilities(cardinality, exponent)
    return {code: int(round(p * rows)) for code, p in enumerate(probs)}
