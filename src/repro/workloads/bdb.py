"""The AmpLab Big Data Benchmark (paper Section 6.7, Figure 9b-c).

Generators for the two BDB relations plus the query set with the paper's
simplifications applied:

- **rankings** (pageURL, pageRank, avgDuration): Q1 scans it with a
  pageRank threshold (variants A/B/C = 1000/100/10 over a 1..10000
  domain).
- **uservisits** (sourceIP, destURL, visitDate, adRevenue, ...): Q2 groups
  ad revenue by a sourceIP *prefix*.  The paper could not run substring
  search over encrypted data, so it "simplified query 2 by matching over
  deterministically encrypted prefixes" -- here the client uploads derived
  prefix columns (8/10/12 characters), exactly that preprocessing.
- Q3 joins the two tables on destURL = pageURL with a visitDate range,
  grouping revenue and average pageRank by sourceIP.
- Q4's external-script phase stays plaintext in the paper; phase 1 is a
  word-count style flat-map over synthetic crawl documents (exercised via
  the RDD API) and phase 2 aggregates the resulting counts under
  encryption.

adRevenue is fixed-point cents (integers), the standard trick for
aggregating currency with integer-only homomorphic schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import SeabedError
from repro.workloads.distributions import zipf_choice


@dataclass
class BdbDataset:
    rankings: dict[str, np.ndarray]
    uservisits: dict[str, np.ndarray]
    rankings_schema: TableSchema
    uservisits_schema: TableSchema


def _random_ips(rng: np.random.Generator, count: int) -> list[str]:
    octets = rng.integers(1, 255, size=(count, 4))
    return [".".join(str(x) for x in row) for row in octets.tolist()]


def generate(
    num_rankings: int = 1000,
    num_uservisits: int = 10_000,
    seed: int = 0,
) -> BdbDataset:
    """Generate both relations at the requested scale."""
    if num_rankings < 1 or num_uservisits < 1:
        raise SeabedError("row counts must be positive")
    rng = np.random.default_rng(seed)
    urls = np.array([f"url{i:07d}.example.com" for i in range(num_rankings)],
                    dtype=object)
    rankings = {
        "pageURL": urls,
        "pageRank": rng.integers(1, 10_001, num_rankings).astype(np.int64),
        "avgDuration": rng.integers(1, 100, num_rankings).astype(np.int64),
    }
    ip_pool = np.array(_random_ips(rng, max(num_uservisits // 50, 8)), dtype=object)
    dest_codes = zipf_choice(rng, num_rankings, num_uservisits, exponent=1.05)
    source_ips = ip_pool[rng.integers(0, len(ip_pool), num_uservisits)]
    uservisits = {
        "sourceIP": source_ips,
        "destURL": urls[dest_codes],
        "visitDate": rng.integers(0, 2000, num_uservisits).astype(np.int64),
        "adRevenue": rng.integers(1, 100_000, num_uservisits).astype(np.int64),
        "userAgent": rng.choice(
            np.array(["firefox", "chrome", "safari", "edge"], dtype=object),
            num_uservisits,
        ),
        "countryCode": rng.choice(
            np.array(["US", "CA", "IN", "GB", "DE", "BR"], dtype=object),
            num_uservisits,
        ),
        "languageCode": rng.choice(
            np.array(["en", "fr", "hi", "de", "pt"], dtype=object), num_uservisits
        ),
        "searchWord": rng.choice(
            np.array([f"word{i}" for i in range(100)], dtype=object), num_uservisits
        ),
        "duration": rng.integers(1, 600, num_uservisits).astype(np.int64),
    }
    # Client pre-processing for Q2: deterministic prefix columns.
    for width in (8, 10, 12):
        uservisits[f"ipPrefix{width}"] = np.array(
            [ip[:width] for ip in source_ips.tolist()], dtype=object
        )
    rankings_schema = TableSchema("rankings", [
        ColumnSpec("pageURL", dtype="str", sensitive=True),
        ColumnSpec("pageRank", dtype="int", sensitive=True, nbits=16),
        ColumnSpec("avgDuration", dtype="int", sensitive=True),
    ])
    uservisits_schema = TableSchema("uservisits", [
        ColumnSpec("sourceIP", dtype="str", sensitive=True),
        ColumnSpec("destURL", dtype="str", sensitive=True),
        ColumnSpec("visitDate", dtype="int", sensitive=True, nbits=16),
        ColumnSpec("adRevenue", dtype="int", sensitive=True),
        ColumnSpec("userAgent", dtype="str", sensitive=False),
        ColumnSpec("countryCode", dtype="str", sensitive=False),
        ColumnSpec("languageCode", dtype="str", sensitive=False),
        ColumnSpec("searchWord", dtype="str", sensitive=False),
        ColumnSpec("duration", dtype="int", sensitive=False),
        ColumnSpec("ipPrefix8", dtype="str", sensitive=True),
        ColumnSpec("ipPrefix10", dtype="str", sensitive=True),
        ColumnSpec("ipPrefix12", dtype="str", sensitive=True),
    ])
    return BdbDataset(rankings, uservisits, rankings_schema, uservisits_schema)


#: Q1 pageRank thresholds for variants A/B/C (over a 1..10000 domain the
#: paper's 1000/100/10 thresholds keep their "almost all rows pass for C"
#: character).
Q1_THRESHOLDS = {"A": 9000, "B": 5000, "C": 1000}

#: Q2 prefix widths for variants A/B/C.
Q2_PREFIXES = {"A": 8, "B": 10, "C": 12}

#: Q3 visitDate ranges (days) for variants A/B/C: progressively larger.
Q3_DATE_RANGES = {"A": (0, 100), "B": (0, 600), "C": (0, 1800)}


def query_q1(variant: str) -> tuple[str, str]:
    """Q1 is a scan: (predicate SQL for the proxy scan API, description)."""
    threshold = Q1_THRESHOLDS[variant]
    return (
        f"SELECT count(*), sum(pageRank) FROM rankings WHERE pageRank > {threshold}",
        f"Q1{variant}: scan rankings where pageRank > {threshold}",
    )


def query_q2(variant: str) -> str:
    width = Q2_PREFIXES[variant]
    return (
        f"SELECT ipPrefix{width}, sum(adRevenue) FROM uservisits "
        f"GROUP BY ipPrefix{width}"
    )


def query_q3(variant: str) -> str:
    low, high = Q3_DATE_RANGES[variant]
    return (
        "SELECT sourceIP, sum(adRevenue), avg(pageRank) FROM uservisits "
        "JOIN rankings ON destURL = pageURL "
        f"WHERE visitDate BETWEEN {low} AND {high} GROUP BY sourceIP"
    )


def sample_queries() -> list[str]:
    """Sample set covering every BDB query shape (drives the planner)."""
    queries = [query_q1("A")[0], query_q3("A")]
    queries.extend(query_q2(v) for v in ("A", "B", "C"))
    return queries


# -- Q4: external-script phase ---------------------------------------------------


def generate_crawl_documents(
    num_documents: int, urls: np.ndarray, seed: int = 0
) -> list[tuple[str, str]]:
    """Synthetic (url, contents) documents for the Q4 word-count phase.

    Contents embed outbound links (``href=<url>``); phase 1 extracts link
    targets, mirroring the benchmark's page-rank-style external script.
    The text stays plaintext, as in the paper's simplification.
    """
    rng = np.random.default_rng(seed)
    words = [f"w{i}" for i in range(50)]
    docs = []
    for d in range(num_documents):
        n_links = int(rng.integers(1, 8))
        links = rng.integers(0, len(urls), n_links)
        tokens: list[str] = []
        for link in links.tolist():
            tokens.append(f"href={urls[link]}")
            tokens.extend(rng.choice(words, size=3).tolist())
        docs.append((str(urls[d % len(urls)]), " ".join(tokens)))
    return docs


def extract_links(document: tuple[str, str]) -> list[tuple[str, int]]:
    """Phase-1 map function: (target url, 1) per outbound link."""
    _source, contents = document
    return [
        (token[len("href="):], 1)
        for token in contents.split()
        if token.startswith("href=")
    ]
