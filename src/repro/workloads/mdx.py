"""The MDX function catalog (paper Appendix B, Table 6).

MDX is the industry-standard BI back-end interface the paper analyses in
Section 5.  Each of the 38 functions is recorded with the *structural
features* that determine how Seabed can support it; the category is
derived by :class:`~repro.core.classify.QueryFeatures`, not hard-coded,
so the classifier logic is what the Table 6 test actually exercises.

Expected totals (paper Table 4, "MDX" row): 38 functions, 17 purely on
server, 12 client pre-processing, 4 client post-processing, 5 two
round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import QueryFeatures


@dataclass(frozen=True)
class MdxFunction:
    number: int
    name: str
    description: str
    how_supported: str
    features: QueryFeatures

    @property
    def category(self) -> str:
        return self.features.category()


def _server(aggs: frozenset[str] = frozenset()) -> QueryFeatures:
    return QueryFeatures(aggregates=aggs)


def _pre(aggs: frozenset[str] = frozenset()) -> QueryFeatures:
    return QueryFeatures(aggregates=aggs, needs_precomputed_column=True)


def _post() -> QueryFeatures:
    return QueryFeatures(returns_data_for_client_compute=True)


def _iterative() -> QueryFeatures:
    return QueryFeatures(iterative=True)


MDX_CATALOG: list[MdxFunction] = [
    MdxFunction(1, "Aggregate", "Aggregates of measures",
                "ASHE for Sum, Count; OPE for Max, Min",
                _server(frozenset({"sum", "count", "min", "max"}))),
    MdxFunction(2, "Avg", "Average of measures",
                "ASHE for Sum, Count; Client does division",
                _server(frozenset({"avg"}))),
    MdxFunction(3, "CalculationCurrentPass", "Current calculation pass of cube",
                "Independent of Seabed", _server()),
    MdxFunction(4, "CalculationPassValue",
                "Returns MDX expression value after current pass",
                "Independent of Seabed", _server()),
    MdxFunction(5, "CoalesceEmpty", "Updates empty value to numeric/string",
                "Can be done with extra counter with identity",
                _pre()),
    MdxFunction(6, "Correlation", "Correlation Coefficient of two series X, Y",
                "ASHE & precomputation of XY; Client does division",
                _pre(frozenset({"correlation"}))),
    MdxFunction(7, "Count(Dimensions)", "Number of dimensions in cube",
                "Independent of Seabed", _server()),
    MdxFunction(8, "Count(Hierarchy Levels)", "Number of levels in hierarchy",
                "Independent of Seabed", _server()),
    MdxFunction(9, "Count(Set)", "Number of elements in a set",
                "Using DE or SPLASHE", _server(frozenset({"count"}))),
    MdxFunction(10, "Count(Tuple)", "Number of dimensions in tuple",
                "Independent of Seabed", _server()),
    MdxFunction(11, "Covariance", "Covariance of X, Y",
                "Same as Correlation", _pre(frozenset({"covariance"}))),
    MdxFunction(12, "CovarianceN", "Covariance of X, Y (with division by N-1)",
                "Same as Correlation", _pre(frozenset({"covariance"}))),
    MdxFunction(13, "DistinctCount", "Counts distinct elements",
                "Using DE or SPLASHE", _server(frozenset({"count"}))),
    MdxFunction(14, "IIf", "One of two values based on logical test",
                "Two values sent back to the client", _post()),
    MdxFunction(15, "LinRegIntercept",
                "Intercept in the Regression Line using Least Squares Method",
                "Data sent back to client for every iteration", _iterative()),
    MdxFunction(16, "LinRegPoint", "y in the regression line",
                "Same as LinRegIntercept", _iterative()),
    MdxFunction(17, "LinRegR2", "Coefficient of Determination",
                "Same as LinRegIntercept", _iterative()),
    MdxFunction(18, "LinRegSlope", "Slope of the regression line",
                "Same as LinRegIntercept", _iterative()),
    MdxFunction(19, "LinRegVariance",
                "Variance associated with regression line",
                "Same as LinRegIntercept", _iterative()),
    MdxFunction(20, "LookupCube", "MDX expression over a cube",
                "Data sent back to client for computation", _post()),
    MdxFunction(21, "Max", "Maximum value in set", "Using OPE",
                _server(frozenset({"max"}))),
    MdxFunction(22, "Median", "Median value in set", "Using OPE",
                _server(frozenset({"median"}))),
    MdxFunction(23, "Min", "Minimum value in set", "Using OPE",
                _server(frozenset({"min"}))),
    MdxFunction(24, "Ordinal", "Zero-based ordinal value", "Using OPE",
                _server()),
    MdxFunction(25, "Predict", "Value of expression over data mining model",
                "Data sent back to client for computation", _post()),
    MdxFunction(26, "Rank", "One-based rank of set", "Using OPE", _server()),
    MdxFunction(27, "RollupChildren",
                "Value generated by rolling up values of children",
                "Data sent back to client for computation", _post()),
    MdxFunction(28, "Stddev", "Standard deviation of a set X",
                "ASHE when Client uploads encrypted X^2 terms",
                _pre(frozenset({"stddev"}))),
    MdxFunction(29, "StddevP", "Std. Dev. using biased population formula",
                "Same as Stddev", _pre(frozenset({"stddev"}))),
    MdxFunction(30, "Stdev", "Alias for Stddev", "Same as Stddev",
                _pre(frozenset({"stddev"}))),
    MdxFunction(31, "StdevP", "Alias for StddevP", "Same as Stddev",
                _pre(frozenset({"stddev"}))),
    MdxFunction(32, "StrToValue", "Value of MDX-formatted string",
                "Independent of Seabed", _server()),
    MdxFunction(33, "Sum", "Sum over a set", "Using ASHE",
                _server(frozenset({"sum"}))),
    MdxFunction(34, "Value", "Value of a measure as a string",
                "Independent of Seabed", _server()),
    MdxFunction(35, "Var", "Variance of a set X", "Same as Stddev",
                _pre(frozenset({"var"}))),
    MdxFunction(36, "Variance", "Alias for Var", "Same as Stddev",
                _pre(frozenset({"var"}))),
    MdxFunction(37, "VarianceP", "Alias for VarP", "Same as Stddev",
                _pre(frozenset({"var"}))),
    MdxFunction(38, "VarP", "Variance using biased population formula",
                "Same as Stddev", _pre(frozenset({"var"}))),
]

#: Paper Table 4, MDX row.
PAPER_COUNTS = {"Total": 38, "S": 17, "CPre": 12, "CPost": 4, "2R": 5}


def category_counts() -> dict[str, int]:
    counts = {"Total": len(MDX_CATALOG), "S": 0, "CPre": 0, "CPost": 0, "2R": 0}
    for fn in MDX_CATALOG:
        counts[fn.category] += 1
    return counts
