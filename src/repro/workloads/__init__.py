"""Dataset and query-set generators for the paper's evaluation.

- :mod:`repro.workloads.synthetic` -- the microbenchmark table
  (Sections 6.2-6.5): one measure column, optional group / OPE columns.
- :mod:`repro.workloads.bdb` -- the AmpLab Big Data Benchmark
  (Section 6.7): rankings + uservisits generators and queries Q1-Q4.
- :mod:`repro.workloads.adanalytics` -- the advertising-analytics
  application (Section 6.6): 33-dimension / 18-measure schema, Zipf value
  distributions, and a query-log generator with the published structural
  mix.
- :mod:`repro.workloads.mdx` -- the 38-function MDX catalog (Table 6).
- :mod:`repro.workloads.tpcds` -- a feature catalog of the 99 TPC-DS
  queries (Table 4).
- :mod:`repro.workloads.distributions` -- Zipf and skew helpers.
- :mod:`repro.workloads.persist` -- the save / fresh-session / attach
  round-trip the loaders' ``--persist`` flags run.
"""
