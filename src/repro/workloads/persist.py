"""Persistence round-trips for workload loaders.

Every workload loader builds a session, plans, and uploads; with a
``--persist DIR`` flag (or the helper below) it additionally exercises
the paper's deployment loop: save the encrypted table to a partition
store, attach it from a *fresh* session holding the same master key, and
verify the reopened table answers queries identically with zero
re-encryption.  This is the cheapest end-to-end proof that a dataset
uploaded once keeps serving analytics jobs from disk.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.ops import OPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.session import AppendStats, EncryptedTable, SeabedSession


def persist_round_trip(
    session: "SeabedSession",
    table: str,
    directory: str | os.PathLike,
    master_key: bytes,
    overwrite: bool = True,
    **session_kwargs,
) -> tuple["SeabedSession", "EncryptedTable"]:
    """Save ``table``, reattach it from a brand-new session, and prove the
    attach performed zero encryption work.

    ``master_key`` must be the key ``session`` was constructed with (the
    sidecar's key-check rejects any other).  Extra ``session_kwargs``
    (cluster, prf_backend, paillier keys...) are forwarded to the fresh
    session.  Returns ``(fresh_session, handle)``.
    """
    from repro.core.session import SeabedSession

    store_path = session.save_table(
        table, os.path.join(os.fspath(directory), table), overwrite=overwrite
    )
    fresh = SeabedSession(
        master_key=master_key, mode=session.mode, **session_kwargs
    )
    before = OPS.snapshot()
    handle = fresh.open_table(store_path)
    encrypt_ops = {
        op: n for op, n in OPS.delta(before).items() if op.startswith("encrypt")
    }
    if encrypt_ops:  # pragma: no cover - guards a regression
        raise AssertionError(
            f"attaching a stored table re-encrypted data: {encrypt_ops}"
        )
    return fresh, handle


def ingest_stream(
    session: "SeabedSession",
    table: str,
    batches: Iterable[Mapping[str, Any]],
    compact_every: int | None = None,
) -> list["AppendStats"]:
    """Drive a batch stream through incremental ingestion.

    Appends every batch to ``table``'s partition store (the table must
    already be persisted -- see ``EncryptedTable.save``), compacting
    after every ``compact_every`` appends so a long drip of small
    batches does not erode scan parallelism.  Used with
    :func:`repro.workloads.adanalytics.stream_batches` this replays the
    paper's flagship workload as arriving traffic.  Returns the per-batch
    :class:`~repro.core.session.AppendStats`.
    """
    stats = []
    for i, batch in enumerate(batches):
        stats.append(session.append_rows(table, batch))
        if compact_every and (i + 1) % compact_every == 0:
            session.compact_table(table)
    return stats
