"""A feature catalog of the 99 TPC-DS queries (paper Table 4).

Substitution note (DESIGN.md Section 4): the paper classified the TPC-DS
query set manually.  We reproduce that analysis with a feature catalog
derived from the public TPC-DS v2 query templates: each query is tagged
with the structural features that determine Seabed support, and the
category comes from the shared classifier.

Feature assignment, approximating the published analysis:

- ``2R`` (3 queries): the customer-total-return pattern (q1, q30, q81)
  compares each customer's aggregate against 1.2x a per-group average of
  the same intermediate -- the intermediate must return to the client,
  be re-encrypted, and feed a second round.
- ``CPre`` (2 queries): q17 and q39 compute stdev/variance, needing
  client-squared columns.
- ``CPost`` (25 queries): window functions (rank/over), ROLLUP/grouping
  sets, and ratio-of-aggregates reporting that Seabed finishes at the
  client.
- ``S`` (69 queries): plain filtered/grouped sums, counts and averages.

Expected totals (paper Table 4, "TPC-DS" row): 99 / 69 / 2 / 25 / 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import QueryFeatures

#: Queries whose templates use window functions (RANK/SUM OVER),
#: ROLLUP/GROUPING, or ratio post-processing.
_CPOST_QUERIES = frozenset({
    5, 9, 12, 14, 18, 20, 22, 23, 24, 27, 36, 44, 47, 49, 51, 53, 57,
    63, 67, 70, 77, 80, 86, 89, 98,
})
#: Queries computing stdev/variance.
_CPRE_QUERIES = frozenset({17, 39})
#: The customer-total-return two-round pattern.
_TWO_ROUND_QUERIES = frozenset({1, 30, 81})


@dataclass(frozen=True)
class TpcdsQuery:
    number: int
    features: QueryFeatures

    @property
    def name(self) -> str:
        return f"q{self.number}"

    @property
    def category(self) -> str:
        return self.features.category()


def catalog() -> list[TpcdsQuery]:
    queries = []
    for n in range(1, 100):
        if n in _TWO_ROUND_QUERIES:
            features = QueryFeatures(iterative=True)
        elif n in _CPRE_QUERIES:
            features = QueryFeatures(aggregates=frozenset({"stddev"}))
        elif n in _CPOST_QUERIES:
            features = QueryFeatures(returns_data_for_client_compute=True)
        else:
            features = QueryFeatures(aggregates=frozenset({"sum", "count", "avg"}))
        queries.append(TpcdsQuery(number=n, features=features))
    return queries


#: Paper Table 4, TPC-DS row.
PAPER_COUNTS = {"Total": 99, "S": 69, "CPre": 2, "CPost": 25, "2R": 3}


def category_counts() -> dict[str, int]:
    counts = {"Total": 99, "S": 0, "CPre": 0, "CPost": 0, "2R": 0}
    for q in catalog():
        counts[q.category] += 1
    return counts
