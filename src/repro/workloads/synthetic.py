"""The microbenchmark dataset (paper Sections 6.2-6.5, Table 5).

The paper's synthetic tables hold one integer measure (plus the implicit
ID column for ASHE); the group-by experiment adds an integer group column
and the OPE experiment adds a range-filterable column.  ``selectivity``
replicates the paper's random row-selection model: each row is chosen
independently with the given probability, which exercises the worst case
for ID-list compression (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import SeabedError


@dataclass
class SyntheticDataset:
    """Columns plus the matching schema and handy sample queries."""

    columns: dict[str, np.ndarray]
    schema: TableSchema
    rows: int


def generate(
    rows: int,
    seed: int = 0,
    value_range: int = 1000,
    num_groups: int | None = None,
    with_ope_column: bool = False,
    table_name: str = "synth",
) -> SyntheticDataset:
    """Build the microbenchmark table.

    ``num_groups`` adds a ``grp`` column with that many distinct values
    (Figure 9a); ``with_ope_column`` adds ``ope_val`` for the Figure 8c
    selection experiment.
    """
    if rows < 1:
        raise SeabedError("rows must be positive")
    rng = np.random.default_rng(seed)
    columns: dict[str, np.ndarray] = {
        "value": rng.integers(0, value_range, rows).astype(np.int64)
    }
    specs = [ColumnSpec("value", dtype="int", sensitive=True, nbits=32)]
    if num_groups is not None:
        columns["grp"] = rng.integers(0, num_groups, rows).astype(np.int64)
        specs.append(ColumnSpec("grp", dtype="int", sensitive=True))
    if with_ope_column:
        columns["ope_val"] = rng.integers(0, value_range, rows).astype(np.int64)
        specs.append(ColumnSpec("ope_val", dtype="int", sensitive=True, nbits=32))
    return SyntheticDataset(
        columns=columns,
        schema=TableSchema(table_name, specs),
        rows=rows,
    )


def sample_queries(dataset: SyntheticDataset) -> list[str]:
    """Sample queries that make the planner pick the paper's schemes."""
    name = dataset.schema.name
    queries = [f"SELECT sum(value) FROM {name}"]
    if "grp" in dataset.columns:
        queries.append(f"SELECT grp, sum(value) FROM {name} GROUP BY grp")
    if "ope_val" in dataset.columns:
        queries.append(f"SELECT sum(value) FROM {name} WHERE ope_val > 10")
    return queries


def selectivity_mask(rows: int, selectivity: float, seed: int = 0) -> np.ndarray:
    """The paper's random selection model: each row kept with probability
    ``selectivity`` (Section 6.1)."""
    if not 0.0 <= selectivity <= 1.0:
        raise SeabedError("selectivity must be in [0, 1]")
    rng = np.random.default_rng(seed)
    return rng.random(rows) < selectivity


def clustered_ids(rows: int, cardinality: int, seed: int = 0) -> np.ndarray:
    """A *sorted* int64 ID column with ``cardinality`` distinct values.

    Sorted draws model the layouts zone maps exploit in production
    stores: data clustered by tenant, user bucket, or arrival time, so
    each partition covers a narrow, mostly disjoint slice of the domain
    and a selective point/range predicate touches few partitions.  (On
    unclustered data the index degrades gracefully to a full scan.)
    """
    if rows < 1 or cardinality < 1:
        raise SeabedError("rows and cardinality must be positive")
    rng = np.random.default_rng(seed)
    return np.sort(rng.integers(0, cardinality, rows)).astype(np.int64)


def selectivity_filter_column(rows: int, seed: int = 0) -> np.ndarray:
    """A uniform [0, 1e6) column; ``sel_col < s * 1e6`` selects ~s of the
    rows, letting benchmarks express selectivity as a server-side filter."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1_000_000, rows).astype(np.int64)
