"""The advertising-analytics workload (paper Section 6.6, Figure 10).

Substitution note (DESIGN.md Section 4): the paper uses a proprietary
enterprise dataset (759M rows, 33 dimensions, 18 measures; 10 of each
sensitive) and a 168,352-query production log.  Both are reproduced
synthetically from the published shape:

- the schema has 33 dimensions with cardinalities spanning 2..10^4 and 18
  integer measures; 10 dimensions and 10 measures are marked sensitive;
- dimension values follow Zipf distributions (enhanced SPLASHE's storage
  win depends on exactly this skew);
- the query log consists of sum aggregations over measures grouped by
  hour-of-day with 1-12 groups per query (Section 6.6: "the queries are
  all aggregations that calculate sums of various measures while grouping
  by timestamp"), with ~20% requiring client post-processing, matching
  the published Table 4 split (134,298 server-only / 34,054
  post-processing out of 168,352).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.classify import QueryFeatures
from repro.core.schema import ColumnSpec, TableSchema
from repro.errors import SeabedError
from repro.workloads.distributions import zipf_choice, zipf_probabilities

#: Table 4's published counts for the ad-analytics log.
PAPER_LOG_TOTAL = 168_352
PAPER_LOG_SERVER = 134_298
PAPER_LOG_POST = 34_054

#: Dimension cardinalities: 33 dims spanning tiny enums to high-cardinality
#: identifiers; the 10 *sensitive* dimensions (the ones Figure 10b splay)
#: are listed smallest-first, mirroring the planner's prioritisation.
SENSITIVE_DIM_CARDINALITIES = [2, 3, 5, 8, 16, 24, 48, 96, 200, 1000]
#: 22 public dimensions; with ``hour`` and the 10 sensitive dimensions the
#: table has the paper's 33 dimensions in total.
PUBLIC_DIM_CARDINALITIES = [
    7, 12, 31, 4, 6, 10, 15, 20, 30, 50, 60, 80, 100, 150, 250, 400,
    600, 800, 1200, 2000, 5000, 10_000,
]

NUM_MEASURES = 18
NUM_SENSITIVE_MEASURES = 10


@dataclass
class AdAnalyticsDataset:
    columns: dict[str, np.ndarray]
    schema: TableSchema
    sensitive_dims: list[str]
    measures: list[str]


def expected_dim_counts(cardinality: int, rows: int) -> list[int]:
    """Expected per-value counts for a sensitive dimension (Zipf 1.2)."""
    probs = zipf_probabilities(cardinality, 1.2)
    return [int(round(p * rows)) + 1 for p in probs]


def dimension_name(index: int, sensitive: bool) -> str:
    return f"sdim{index:02d}" if sensitive else f"pdim{index:02d}"


def measure_name(index: int) -> str:
    return f"measure{index:02d}"


def generate(rows: int = 20_000, seed: int = 0) -> AdAnalyticsDataset:
    """Generate the ad-analytics table at the requested scale."""
    if rows < 1:
        raise SeabedError("rows must be positive")
    rng = np.random.default_rng(seed)
    columns: dict[str, np.ndarray] = {}
    specs: list[ColumnSpec] = []

    # hour-of-day is the grouping dimension every logged query uses.
    columns["hour"] = rng.integers(0, 24, rows).astype(np.int64)
    specs.append(ColumnSpec("hour", dtype="int", sensitive=False))

    sensitive_dims = []
    for i, card in enumerate(SENSITIVE_DIM_CARDINALITIES):
        name = dimension_name(i, sensitive=True)
        sensitive_dims.append(name)
        codes = zipf_choice(rng, card, rows, exponent=1.2)
        columns[name] = codes.astype(np.int64)
        probs = zipf_probabilities(card, 1.2)
        specs.append(ColumnSpec(
            name, dtype="int", sensitive=True,
            distinct_values=list(range(card)),
            value_counts={c: int(round(p * rows)) + 1 for c, p in enumerate(probs)},
        ))
    for i, card in enumerate(PUBLIC_DIM_CARDINALITIES):
        name = dimension_name(i, sensitive=False)
        columns[name] = zipf_choice(rng, card, rows, exponent=1.05).astype(np.int64)
        specs.append(ColumnSpec(name, dtype="int", sensitive=False))

    measures = []
    for i in range(NUM_MEASURES):
        name = measure_name(i)
        measures.append(name)
        columns[name] = rng.integers(0, 10_000, rows).astype(np.int64)
        specs.append(ColumnSpec(
            name, dtype="int", sensitive=i < NUM_SENSITIVE_MEASURES, nbits=32
        ))
    return AdAnalyticsDataset(
        columns=columns,
        schema=TableSchema("ad_analytics", specs),
        sensitive_dims=sensitive_dims,
        measures=measures,
    )


def stream_batches(
    dataset: AdAnalyticsDataset, num_batches: int
) -> Iterator[dict[str, np.ndarray]]:
    """Replay the dataset as *arriving* traffic: consecutive row batches.

    The paper's flagship workload is continuous ad-analytics ingestion
    (Section 3.1 motivates ASHE with exactly this write rate); this
    slices the generated table into ``num_batches`` consecutive batches
    so the upload can be driven as a stream -- first batch through
    ``SeabedSession.upload``, the rest through ``append_rows`` (see
    :func:`repro.workloads.persist.ingest_stream`).
    """
    if num_batches < 1:
        raise SeabedError("num_batches must be positive")
    nrows = len(next(iter(dataset.columns.values())))
    bounds = np.linspace(0, nrows, num_batches + 1).astype(np.int64)
    for i in range(num_batches):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        if lo == hi:
            continue
        yield {name: arr[lo:hi] for name, arr in dataset.columns.items()}


def sample_queries(dataset: AdAnalyticsDataset) -> list[str]:
    """Sample set: hour-grouped sums over each sensitive measure plus
    equality filters on each sensitive dimension (so the planner splays
    the right measure columns)."""
    queries = []
    for i in range(NUM_SENSITIVE_MEASURES):
        queries.append(
            f"SELECT hour, sum({measure_name(i)}) FROM ad_analytics GROUP BY hour"
        )
    for dim in dataset.sensitive_dims:
        queries.append(
            f"SELECT sum({measure_name(0)}), sum({measure_name(1)}) "
            f"FROM ad_analytics WHERE {dim} = 0"
        )
    return queries


# -- the production query log -----------------------------------------------------


@dataclass(frozen=True)
class LoggedQuery:
    """One entry of the synthetic production log."""

    sql: str
    num_groups: int
    features: QueryFeatures

    @property
    def category(self) -> str:
        return self.features.category()


def generate_query_log(
    num_queries: int = 2000, seed: int = 0
) -> list[LoggedQuery]:
    """Synthesise a query log with the published structural mix.

    Group counts concentrate on 1-12 (Section 6.6); the post-processing
    fraction matches Table 4's 34,054 / 168,352 ~ 20.2%.
    """
    rng = np.random.default_rng(seed)
    post_fraction = PAPER_LOG_POST / PAPER_LOG_TOTAL
    log: list[LoggedQuery] = []
    for _ in range(num_queries):
        measure = measure_name(int(rng.integers(0, NUM_SENSITIVE_MEASURES)))
        num_groups = int(rng.choice([1, 2, 4, 6, 8, 12],
                                    p=[0.35, 0.15, 0.2, 0.1, 0.15, 0.05]))
        if num_groups == 1:
            hour = int(rng.integers(0, 24))
            sql = (
                f"SELECT sum({measure}) FROM ad_analytics WHERE hour = {hour}"
            )
        else:
            hi = int(rng.integers(num_groups - 1, 24))
            lo = hi - num_groups + 1
            sql = (
                f"SELECT hour, sum({measure}) FROM ad_analytics "
                f"WHERE hour BETWEEN {lo} AND {hi} GROUP BY hour"
            )
        needs_post = bool(rng.random() < post_fraction)
        features = QueryFeatures(
            aggregates=frozenset({"sum"}),
            returns_data_for_client_compute=needs_post,
        )
        log.append(LoggedQuery(sql=sql, num_groups=num_groups, features=features))
    return log


def figure10a_queries(seed: int = 0) -> list[LoggedQuery]:
    """The 15 measurement queries of Figure 10a: five each at group sizes
    1, 4 and 8."""
    rng = np.random.default_rng(seed)
    queries: list[LoggedQuery] = []
    for num_groups in (1, 4, 8):
        for _ in range(5):
            measure = measure_name(int(rng.integers(0, NUM_SENSITIVE_MEASURES)))
            if num_groups == 1:
                hour = int(rng.integers(0, 24))
                sql = f"SELECT sum({measure}) FROM ad_analytics WHERE hour = {hour}"
            else:
                hi = int(rng.integers(num_groups - 1, 24))
                lo = hi - num_groups + 1
                sql = (
                    f"SELECT hour, sum({measure}) FROM ad_analytics "
                    f"WHERE hour BETWEEN {lo} AND {hi} GROUP BY hour"
                )
            queries.append(LoggedQuery(
                sql=sql, num_groups=num_groups,
                features=QueryFeatures(aggregates=frozenset({"sum"})),
            ))
    return queries
