"""Audit telemetry exports for plaintext / key-material leakage.

The Seabed threat model lets the server observe ciphertext *sizes* and
*timings* -- telemetry that reveals anything more (plaintext values, key
bytes, auth tokens) silently widens that model.  This audit inspects the
two surfaces the :mod:`repro.obs` subsystem exports -- span attributes
and Prometheus metric labels -- and flags anything that does not look
like the sizes/counts/timings/short-identifiers contract those surfaces
promise:

- raw ``bytes`` values anywhere (ciphertexts and keys are ``bytes``;
  telemetry must never carry them, even encoded),
- overlong strings (span attributes and metric label values are short
  operator/table/tenant names -- a 64-char ceiling by default),
- high-entropy strings that look like hex/base64 key or token material
  (long strings drawn almost entirely from a hex-ish alphabet).

The heuristics mirror :func:`repro.attacks.frequency.frequency_attack`'s
role in the test suite: an adversarial check the integration tests run
against *live* exports, so a regression that starts attaching secrets to
spans fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["TelemetryAuditResult", "audit_telemetry"]

#: Longest string a span attribute or label value may carry.  Table,
#: tenant, operator, and scheme names are all far shorter; plaintext
#: cell values and encoded ciphertexts are typically far longer.
MAX_STRING = 64

#: Strings at least this long made (almost) entirely of hex characters
#: are treated as likely key/token/ciphertext material.
_HEXISH_MIN = 24
_HEXISH = set("0123456789abcdefABCDEF")

#: Keys that must never appear on any telemetry surface, whatever the
#: value: their presence alone means someone wired a secret through.
_FORBIDDEN_KEYS = frozenset({
    "key", "master_key", "secret", "token", "auth", "password",
    "plaintext", "value", "values",
})


@dataclass
class TelemetryAuditResult:
    """Outcome of auditing span and metric exports for leakage."""

    spans_checked: int
    labels_checked: int
    violations: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"telemetry audit: {self.spans_checked} spans, "
            f"{self.labels_checked} label values -- {state}"
        )


def _hexish(text: str) -> bool:
    if len(text) < _HEXISH_MIN:
        return False
    hex_chars = sum(1 for ch in text if ch in _HEXISH)
    return hex_chars / len(text) > 0.9


def _check_value(where: str, key: str, value, violations: list[str]) -> None:
    if key.lower() in _FORBIDDEN_KEYS:
        violations.append(f"{where}: forbidden key {key!r}")
        return
    if isinstance(value, (bytes, bytearray, memoryview)):
        violations.append(f"{where}: raw bytes under {key!r} ({len(value)} bytes)")
        return
    if isinstance(value, str):
        # Trace/span ids are hex by design; only their own keys may be.
        if key in ("trace_id", "span_id", "parent_id"):
            return
        if len(value) > MAX_STRING:
            violations.append(
                f"{where}: overlong string under {key!r} ({len(value)} chars)"
            )
        elif _hexish(value):
            violations.append(
                f"{where}: high-entropy hex-like string under {key!r}"
            )


def _iter_label_values(prometheus_text: str) -> Iterable[tuple[str, str, str]]:
    """Yield ``(metric, label, value)`` from exposition-format sample lines."""
    for line in prometheus_text.splitlines():
        if not line or line.startswith("#") or "{" not in line:
            continue
        name, rest = line.split("{", 1)
        body = rest.rsplit("}", 1)[0]
        for pair in body.split(","):
            if "=" not in pair:
                continue
            label, raw = pair.split("=", 1)
            yield name.strip(), label.strip(), raw.strip().strip('"')


def audit_telemetry(spans=(), prometheus_text: str = "") -> TelemetryAuditResult:
    """Audit span attributes and Prometheus labels for secret material.

    ``spans`` is any iterable of :class:`repro.obs.trace.Span` (or their
    ``to_dict()`` forms); ``prometheus_text`` is a
    :meth:`~repro.obs.metrics.MetricsRegistry.prometheus` export.  Either
    may be empty.  Returns a :class:`TelemetryAuditResult`; callers
    assert ``result.ok``.
    """
    violations: list[str] = []
    spans_checked = 0
    for sp in spans:
        data = sp.to_dict() if hasattr(sp, "to_dict") else dict(sp)
        spans_checked += 1
        where = f"span {data.get('name', '?')!r}"
        for key, value in (data.get("attributes") or {}).items():
            _check_value(where, key, value, violations)

    labels_checked = 0
    for metric, label, value in _iter_label_values(prometheus_text):
        labels_checked += 1
        _check_value(f"metric {metric!r}", label, value, violations)

    return TelemetryAuditResult(spans_checked, labels_checked, violations)
