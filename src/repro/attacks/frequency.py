"""Frequency attacks on deterministic encryption (Naveed et al., CCS'15).

The attack the paper defends against with SPLASHE (Sections 1-3): an
honest-but-curious server observing a deterministically encrypted column
sees the exact histogram of ciphertexts.  Armed with auxiliary knowledge
of the plaintext distribution (census data, public statistics), it matches
ciphertext frequencies to plaintext frequencies and decrypts the column
without any key material.

Two matchers are provided:

- :func:`frequency_attack` with ``method="sort"`` -- the classic attack:
  sort both histograms and align by rank.
- ``method="optimal"`` -- an l1-cost optimal assignment (Hungarian
  algorithm via :func:`scipy.optimize.linear_sum_assignment`), the
  strongest frequency-only adversary.

The result reports the fraction of *values* recovered and the fraction of
*rows* exposed, which the SPLASHE tests drive to chance level.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

import numpy as np

from repro.errors import SeabedError


@dataclass
class FrequencyAttackResult:
    """Outcome of one frequency-matching attack."""

    guesses: dict[Any, Hashable]  # ciphertext -> guessed plaintext value
    value_accuracy: float  # fraction of distinct values guessed correctly
    row_accuracy: float  # fraction of rows whose value the guess exposes
    num_ciphertexts: int

    def summary(self) -> str:
        return (
            f"{self.value_accuracy:.0%} of values recovered, "
            f"{self.row_accuracy:.0%} of rows exposed "
            f"({self.num_ciphertexts} distinct ciphertexts)"
        )


def frequency_attack(
    ciphertexts: Sequence[Any] | np.ndarray,
    auxiliary_distribution: Mapping[Hashable, float],
    true_mapping: Mapping[Any, Hashable] | None = None,
    method: str = "sort",
) -> FrequencyAttackResult:
    """Match ciphertext frequencies against an auxiliary distribution.

    ``ciphertexts`` is the encrypted column as the server sees it.
    ``auxiliary_distribution`` maps plaintext values to (relative)
    expected frequencies.  ``true_mapping`` (ciphertext -> true plaintext),
    when supplied, scores the attack; it exists only for evaluation and is
    never used to form guesses.
    """
    if method not in ("sort", "optimal"):
        raise SeabedError(f"unknown attack method {method!r}")
    counts = Counter(np.asarray(ciphertexts).tolist())
    if not counts:
        raise SeabedError("empty ciphertext column")
    total_rows = sum(counts.values())
    observed = sorted(counts.items(), key=lambda kv: -kv[1])
    aux_total = float(sum(auxiliary_distribution.values()))
    aux = sorted(
        ((v, f / aux_total) for v, f in auxiliary_distribution.items()),
        key=lambda kv: -kv[1],
    )

    if method == "sort":
        guesses = {
            ct: aux[rank][0]
            for rank, (ct, _n) in enumerate(observed)
            if rank < len(aux)
        }
    else:
        guesses = _optimal_assignment(observed, aux, total_rows)

    value_acc = 0.0
    row_acc = 0.0
    if true_mapping is not None:
        correct_values = sum(
            1 for ct, guess in guesses.items() if true_mapping.get(ct) == guess
        )
        value_acc = correct_values / len(counts)
        correct_rows = sum(
            counts[ct] for ct, guess in guesses.items()
            if true_mapping.get(ct) == guess
        )
        row_acc = correct_rows / total_rows
    return FrequencyAttackResult(
        guesses=guesses,
        value_accuracy=value_acc,
        row_accuracy=row_acc,
        num_ciphertexts=len(counts),
    )


def _optimal_assignment(
    observed: list[tuple[Any, int]],
    aux: list[tuple[Hashable, float]],
    total_rows: int,
) -> dict[Any, Hashable]:
    """Min-cost matching between observed and expected frequencies."""
    from scipy.optimize import linear_sum_assignment

    obs_freq = np.array([n / total_rows for _, n in observed])
    aux_freq = np.array([f for _, f in aux])
    cost = np.abs(obs_freq[:, None] - aux_freq[None, :])
    rows, cols = linear_sum_assignment(cost)
    return {observed[r][0]: aux[c][0] for r, c in zip(rows, cols)}


def uniformity_chi2(ciphertexts: Sequence[Any] | np.ndarray) -> float:
    """Chi-square p-value that the ciphertext histogram is uniform.

    Used by the SPLASHE security tests: the enhanced-SPLASHE DET column
    should be statistically indistinguishable from uniform, leaving a
    frequency attacker at chance.
    """
    from scipy.stats import chisquare

    counts = np.asarray(list(Counter(np.asarray(ciphertexts).tolist()).values()))
    if counts.size < 2:
        return 1.0
    return float(chisquare(counts).pvalue)
