"""Frequency attacks on deterministic encryption (Naveed et al., CCS'15).

The attack the paper defends against with SPLASHE (Sections 1-3): an
honest-but-curious server observing a deterministically encrypted column
sees the exact histogram of ciphertexts.  Armed with auxiliary knowledge
of the plaintext distribution (census data, public statistics), it matches
ciphertext frequencies to plaintext frequencies and decrypts the column
without any key material.

Two matchers are provided:

- :func:`frequency_attack` with ``method="sort"`` -- the classic attack:
  sort both histograms and align by rank.
- ``method="optimal"`` -- an l1-cost optimal assignment (Hungarian
  algorithm via :func:`scipy.optimize.linear_sum_assignment`), the
  strongest frequency-only adversary.

The result reports the fraction of *values* recovered and the fraction of
*rows* exposed, which the SPLASHE tests drive to chance level.

:func:`audit_zone_maps` extends the adversarial toolkit to the zone-map
index (:mod:`repro.index`): it verifies that every published index
artifact is **exactly recomputable by a keyless server from the
ciphertext columns it already stores** -- token sets contain only
already-visible DET tokens, bloom bits are the deterministic digest of
those tokens, ORE bounds are member rows found with the public Compare,
and no artifact exists for a semantically secure (ASHE/Paillier)
column.  Anything that fails recomputation must have been derived from
plaintext knowledge and is reported as a leakage violation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

import numpy as np

from repro.errors import SeabedError


@dataclass
class FrequencyAttackResult:
    """Outcome of one frequency-matching attack."""

    guesses: dict[Any, Hashable]  # ciphertext -> guessed plaintext value
    value_accuracy: float  # fraction of distinct values guessed correctly
    row_accuracy: float  # fraction of rows whose value the guess exposes
    num_ciphertexts: int

    def summary(self) -> str:
        return (
            f"{self.value_accuracy:.0%} of values recovered, "
            f"{self.row_accuracy:.0%} of rows exposed "
            f"({self.num_ciphertexts} distinct ciphertexts)"
        )


def frequency_attack(
    ciphertexts: Sequence[Any] | np.ndarray,
    auxiliary_distribution: Mapping[Hashable, float],
    true_mapping: Mapping[Any, Hashable] | None = None,
    method: str = "sort",
) -> FrequencyAttackResult:
    """Match ciphertext frequencies against an auxiliary distribution.

    ``ciphertexts`` is the encrypted column as the server sees it.
    ``auxiliary_distribution`` maps plaintext values to (relative)
    expected frequencies.  ``true_mapping`` (ciphertext -> true plaintext),
    when supplied, scores the attack; it exists only for evaluation and is
    never used to form guesses.
    """
    if method not in ("sort", "optimal"):
        raise SeabedError(f"unknown attack method {method!r}")
    counts = Counter(np.asarray(ciphertexts).tolist())
    if not counts:
        raise SeabedError("empty ciphertext column")
    total_rows = sum(counts.values())
    observed = sorted(counts.items(), key=lambda kv: -kv[1])
    aux_total = float(sum(auxiliary_distribution.values()))
    aux = sorted(
        ((v, f / aux_total) for v, f in auxiliary_distribution.items()),
        key=lambda kv: -kv[1],
    )

    if method == "sort":
        guesses = {
            ct: aux[rank][0]
            for rank, (ct, _n) in enumerate(observed)
            if rank < len(aux)
        }
    else:
        guesses = _optimal_assignment(observed, aux, total_rows)

    value_acc = 0.0
    row_acc = 0.0
    if true_mapping is not None:
        correct_values = sum(
            1 for ct, guess in guesses.items() if true_mapping.get(ct) == guess
        )
        value_acc = correct_values / len(counts)
        correct_rows = sum(
            counts[ct] for ct, guess in guesses.items()
            if true_mapping.get(ct) == guess
        )
        row_acc = correct_rows / total_rows
    return FrequencyAttackResult(
        guesses=guesses,
        value_accuracy=value_acc,
        row_accuracy=row_acc,
        num_ciphertexts=len(counts),
    )


def _optimal_assignment(
    observed: list[tuple[Any, int]],
    aux: list[tuple[Hashable, float]],
    total_rows: int,
) -> dict[Any, Hashable]:
    """Min-cost matching between observed and expected frequencies."""
    from scipy.optimize import linear_sum_assignment

    obs_freq = np.array([n / total_rows for _, n in observed])
    aux_freq = np.array([f for _, f in aux])
    cost = np.abs(obs_freq[:, None] - aux_freq[None, :])
    rows, cols = linear_sum_assignment(cost)
    return {observed[r][0]: aux[c][0] for r, c in zip(rows, cols)}


#: Encryption schemes whose ciphertexts are semantically secure: *no*
#: zone-map artifact may discriminate on them -- any statistic that did
#: would necessarily come from plaintext knowledge.
_SEMANTIC_SCHEMES = ("ashe", "paillier")


@dataclass
class ZoneMapAuditResult:
    """Outcome of auditing a table's zone maps against its ciphertexts."""

    partitions_checked: int
    artifacts_checked: int
    violations: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"zone-map audit: {self.artifacts_checked} artifacts over "
            f"{self.partitions_checked} partitions -- {state}"
        )


def _audit_spec(name: str, arr: np.ndarray, enc: str | None) -> dict:
    """The store's manifest column spec for ``arr`` (shared derivation:
    the audit must see exactly what the stats builder saw at write time),
    tolerating non-storable columns on ad-hoc in-memory tables."""
    from repro.engine.store import _column_spec

    try:
        spec = _column_spec(name, arr)
    except SeabedError:
        spec = {"dtype": None, "ndim": int(arr.ndim), "width": 1}
    if enc is not None:
        spec["enc"] = enc
    return spec


def audit_zone_maps(
    table: Any, column_meta: Mapping[str, str] | None = None
) -> ZoneMapAuditResult:
    """Assert a table's zone maps leak nothing beyond the DET/ORE
    ciphertext baseline.

    ``table`` is a :class:`repro.engine.table.Table` whose ``zone_maps``
    were parsed from a store manifest; ``column_meta`` (physical column
    -> encryption scheme, as the manifest records it) tightens the check
    by flagging artifacts on semantically secure columns outright.

    The core criterion is *recomputability*: each partition's published
    statistics must equal, byte for byte, what
    :func:`repro.index.zonemap.build_partition_stats` derives from the
    stored ciphertext columns alone.  The honest-but-curious server can
    run that builder itself, so a matching artifact gives it nothing it
    did not already have; a mismatching one encodes outside knowledge
    and is reported as a violation.
    """
    from repro.index.zonemap import build_partition_stats, classify_column

    zone_maps = list(getattr(table, "zone_maps", None) or [])
    violations: list[str] = []
    artifacts = 0
    checked = 0
    for index, (part, stats) in enumerate(zip(table.partitions, zone_maps)):
        if not stats:
            continue
        checked += 1
        if int(stats.get("rows", -1)) != part.nrows:
            violations.append(
                f"partition {index}: stats claim {stats.get('rows')} rows, "
                f"column files hold {part.nrows}"
            )
        specs = {
            name: _audit_spec(
                name, arr, column_meta.get(name) if column_meta else None
            )
            for name, arr in part.columns.items()
        }
        expected = build_partition_stats(part, specs)["columns"]
        for name, artifact in stats.get("columns", {}).items():
            artifacts += 1
            if name not in part.columns:
                violations.append(
                    f"partition {index}: artifact for column {name!r} which "
                    "the server does not even store"
                )
                continue
            if column_meta and column_meta.get(name) in _SEMANTIC_SCHEMES:
                violations.append(
                    f"partition {index}: column {name!r} is "
                    f"{column_meta[name]}-encrypted (semantically secure) but "
                    f"carries a {artifact.get('kind')!r} artifact"
                )
                continue
            kind = classify_column(name, specs[name])
            if artifact.get("kind") != kind:
                violations.append(
                    f"partition {index}: column {name!r} stats kind "
                    f"{artifact.get('kind')!r} does not match the stored "
                    f"ciphertext shape ({kind!r})"
                )
                continue
            if artifact != expected.get(name):
                violations.append(
                    f"partition {index}: column {name!r} {kind} artifact is "
                    "not recomputable from the stored ciphertexts -- it "
                    "encodes information beyond the encryption-mode baseline"
                )
    return ZoneMapAuditResult(
        partitions_checked=checked,
        artifacts_checked=artifacts,
        violations=violations,
    )


def uniformity_chi2(ciphertexts: Sequence[Any] | np.ndarray) -> float:
    """Chi-square p-value that the ciphertext histogram is uniform.

    Used by the SPLASHE security tests: the enhanced-SPLASHE DET column
    should be statistically indistinguishable from uniform, leaving a
    frequency attacker at chance.
    """
    from scipy.stats import chisquare

    counts = np.asarray(list(Counter(np.asarray(ciphertexts).tolist()).values()))
    if counts.size < 2:
        return 1.0
    return float(chisquare(counts).pvalue)
