"""Adversarial analyses: the frequency attack SPLASHE defends against."""

from repro.attacks.frequency import FrequencyAttackResult, frequency_attack

__all__ = ["FrequencyAttackResult", "frequency_attack"]
