"""Query layer: a SQL-subset AST, parser, and plaintext executor.

Seabed's query translator (paper Section 4.4) consumes the client's
unmodified analytical queries and rewrites them for the encrypted schema.
This package supplies the plaintext side of that pipeline:

- :mod:`repro.query.ast` -- the query AST (aggregations, predicates,
  group-by, joins) shared by the planner, translator, and executors.
- :mod:`repro.query.parser` -- a recursive-descent parser for the
  OLAP-style SQL subset the paper's workloads use, including ``:name``
  parameter placeholders.
- :mod:`repro.query.builder` -- the fluent :class:`QueryBuilder` and
  :func:`col` expression DSL, plus :func:`render_sql` (the parser's
  inverse).
- :mod:`repro.query.executor` -- a direct numpy executor over plaintext
  columns: the ground truth for every correctness test and the NoEnc
  baseline semantics.
"""

from repro.query.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    JoinClause,
    Not,
    Or,
    Param,
    Query,
)
from repro.query.builder import QueryBuilder, and_, col, not_, or_, render_sql
from repro.query.executor import execute_plain
from repro.query.parser import parse_query

__all__ = [
    "Aggregate",
    "And",
    "Between",
    "ColumnRef",
    "Comparison",
    "InList",
    "JoinClause",
    "Not",
    "Or",
    "Param",
    "Query",
    "QueryBuilder",
    "and_",
    "col",
    "execute_plain",
    "not_",
    "or_",
    "parse_query",
    "render_sql",
]
