"""A recursive-descent parser for the OLAP SQL subset Seabed supports.

Grammar (keywords case-insensitive)::

    query      := SELECT items FROM ident [join] [WHERE or_expr]
                  [GROUP BY idents] [ORDER BY orders] [LIMIT int]
    join       := JOIN ident ON ident '=' ident
    items      := item (',' item)*
    item       := func '(' (ident | '*') ')' [AS ident] | ident
    or_expr    := and_expr (OR and_expr)*
    and_expr   := unary (AND unary)*
    unary      := NOT unary | '(' or_expr ')' | predicate
    predicate  := ident op literal
                | ident IN '(' literal (',' literal)* ')'
                | ident BETWEEN literal AND literal
    op         := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    literal    := integer | float | 'string' | ':' ident

``:name`` is a named parameter placeholder (it parses to
:class:`~repro.query.ast.Param`): ``SeabedSession.prepare`` translates
such a query once and re-binds values on every execute.

This is deliberately the fragment exercised by the paper's workloads
(microbenchmarks, ad analytics, Big Data Benchmark); anything outside it
raises :class:`~repro.errors.ParseError` with a position, which the proxy
surfaces to the analyst.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.ops import OPS
from repro.query.ast import (
    AGGREGATE_FUNCS,
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    JoinClause,
    Literal,
    Not,
    Or,
    Param,
    Predicate,
    Query,
    SelectItem,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<param>:[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),*])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "and", "or", "not", "in",
    "between", "as", "join", "on", "order", "limit", "asc", "desc",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # ws|float|int|string|op|punct|ident|keyword|eof
    text: str
    pos: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(f"unexpected character {sql[pos]!r} at position {pos}")
        kind = match.lastgroup or ""
        text = match.group()
        if kind != "ws":
            if kind == "ident" and text.lower() in _KEYWORDS:
                kind, text = "keyword", text.lower()
            tokens.append(_Token(kind, text, pos))
        pos = match.end()
    tokens.append(_Token("eof", "", len(sql)))
    return tokens


class _Parser:
    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = _tokenize(sql)
        self._i = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._i]

    def _next(self) -> _Token:
        tok = self._tokens[self._i]
        self._i += 1
        return tok

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        tok = self._peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        tok = self._accept(kind, text)
        if tok is None:
            want = text or kind
            got = self._peek()
            raise ParseError(
                f"expected {want!r} at position {got.pos}, found {got.text or 'end of query'!r}"
            )
        return tok

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Query:
        self._expect("keyword", "select")
        select = self._select_items()
        self._expect("keyword", "from")
        table = self._expect("ident").text
        join = None
        if self._accept("keyword", "join"):
            join_table = self._expect("ident").text
            self._expect("keyword", "on")
            left = self._expect("ident").text
            self._expect("op", "=")
            right = self._expect("ident").text
            join = JoinClause(table=join_table, left_column=left, right_column=right)
        where = None
        if self._accept("keyword", "where"):
            where = self._or_expr()
        group_by: tuple[str, ...] = ()
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by = self._ident_list()
        order_by: tuple[tuple[str, bool], ...] = ()
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by = self._order_list()
        limit = None
        if self._accept("keyword", "limit"):
            limit = int(self._expect("int").text)
        self._expect("eof")
        return Query(
            select=select, table=table, join=join, where=where,
            group_by=group_by, order_by=order_by, limit=limit,
        )

    def _select_items(self) -> tuple[SelectItem, ...]:
        items = [self._select_item()]
        while self._accept("punct", ","):
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> SelectItem:
        tok = self._expect("ident")
        name = tok.text
        if self._accept("punct", "("):
            func = name.lower()
            if func not in AGGREGATE_FUNCS:
                raise ParseError(
                    f"unknown aggregate function {name!r} at position {tok.pos}"
                )
            if self._accept("punct", "*"):
                column = None
            else:
                column = self._expect("ident").text
            self._expect("punct", ")")
            alias = None
            if self._accept("keyword", "as"):
                alias = self._expect("ident").text
            return Aggregate(func=func, column=column, alias=alias)
        return ColumnRef(name=name)

    def _ident_list(self) -> tuple[str, ...]:
        names = [self._expect("ident").text]
        while self._accept("punct", ","):
            names.append(self._expect("ident").text)
        return tuple(names)

    def _order_list(self) -> tuple[tuple[str, bool], ...]:
        orders = []
        while True:
            name = self._expect("ident").text
            descending = False
            if self._accept("keyword", "desc"):
                descending = True
            else:
                self._accept("keyword", "asc")
            orders.append((name, descending))
            if not self._accept("punct", ","):
                return tuple(orders)

    # -- predicates ---------------------------------------------------------

    def _or_expr(self) -> Predicate:
        children = [self._and_expr()]
        while self._accept("keyword", "or"):
            children.append(self._and_expr())
        return children[0] if len(children) == 1 else Or(tuple(children))

    def _and_expr(self) -> Predicate:
        children = [self._unary()]
        while self._accept("keyword", "and"):
            children.append(self._unary())
        return children[0] if len(children) == 1 else And(tuple(children))

    def _unary(self) -> Predicate:
        if self._accept("keyword", "not"):
            return Not(self._unary())
        if self._accept("punct", "("):
            inner = self._or_expr()
            self._expect("punct", ")")
            return inner
        return self._predicate()

    def _predicate(self) -> Predicate:
        column = self._expect("ident").text
        if self._accept("keyword", "in"):
            self._expect("punct", "(")
            values = [self._literal()]
            while self._accept("punct", ","):
                values.append(self._literal())
            self._expect("punct", ")")
            return InList(column=column, values=tuple(values))
        if self._accept("keyword", "between"):
            low = self._literal()
            self._expect("keyword", "and")
            high = self._literal()
            return Between(column=column, low=low, high=high)
        op_tok = self._expect("op")
        op = "!=" if op_tok.text == "<>" else op_tok.text
        return Comparison(column=column, op=op, value=self._literal())

    def _literal(self) -> Literal | Param:
        tok = self._next()
        if tok.kind == "int":
            return int(tok.text)
        if tok.kind == "float":
            return float(tok.text)
        if tok.kind == "string":
            body = tok.text[1:-1]
            return body.replace("\\'", "'").replace("\\\\", "\\")
        if tok.kind == "param":
            return Param(tok.text[1:])
        raise ParseError(f"expected a literal at position {tok.pos}, found {tok.text!r}")


def parse_query(sql: str) -> Query:
    """Parse one SELECT statement into a :class:`~repro.query.ast.Query`."""
    OPS.bump("parse")
    return _Parser(sql).parse()
