"""Plaintext query execution: ground truth and NoEnc semantics.

A direct, single-process numpy evaluator for the query AST.  Every
correctness test in this repository checks the encrypted pipeline against
this executor, and the NoEnc baseline's *results* are defined by it (its
*timing* is measured through the simulated cluster in
:mod:`repro.core.baselines`).

Tables are plain ``dict[str, np.ndarray]`` columns; string columns may be
``object`` arrays or Python lists.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.query.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    Query,
)

Columns = Mapping[str, Any]
ResultRow = dict[str, Any]


def _as_array(column: Any) -> np.ndarray:
    if isinstance(column, np.ndarray):
        return column
    return np.asarray(column, dtype=object)


def evaluate_predicate(columns: Columns, pred: Predicate | None, nrows: int) -> np.ndarray:
    """Boolean selection mask for a predicate tree."""
    if pred is None:
        return np.ones(nrows, dtype=bool)
    if isinstance(pred, Comparison):
        col = _as_array(_get(columns, pred.column))
        ops = {
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        return np.asarray(ops[pred.op](col, pred.value), dtype=bool)
    if isinstance(pred, InList):
        col = _as_array(_get(columns, pred.column))
        mask = np.zeros(nrows, dtype=bool)
        for v in pred.values:
            mask |= np.asarray(col == v, dtype=bool)
        return mask
    if isinstance(pred, Between):
        col = _as_array(_get(columns, pred.column))
        return np.asarray((col >= pred.low) & (col <= pred.high), dtype=bool)
    if isinstance(pred, Not):
        return ~evaluate_predicate(columns, pred.child, nrows)
    if isinstance(pred, And):
        mask = np.ones(nrows, dtype=bool)
        for child in pred.children:
            mask &= evaluate_predicate(columns, child, nrows)
        return mask
    if isinstance(pred, Or):
        mask = np.zeros(nrows, dtype=bool)
        for child in pred.children:
            mask |= evaluate_predicate(columns, child, nrows)
        return mask
    raise ExecutionError(f"unknown predicate node {type(pred).__name__}")


def _get(columns: Columns, name: str) -> Any:
    try:
        return columns[name]
    except KeyError:
        raise ExecutionError(
            f"unknown column {name!r}; available: {sorted(columns)}"
        ) from None


def compute_aggregate(agg: Aggregate, values: np.ndarray | None) -> Any:
    """One aggregate over already-selected values."""
    if agg.func == "count":
        if values is None:
            raise ExecutionError("count requires the selection size")
        return int(len(values))
    assert values is not None
    if len(values) == 0:
        return None
    if agg.func == "sum":
        return _maybe_int(values.sum())
    if agg.func == "avg":
        return float(values.mean())
    if agg.func == "min":
        return _maybe_int(values.min())
    if agg.func == "max":
        return _maybe_int(values.max())
    if agg.func == "median":
        return float(np.median(values))
    if agg.func == "var":
        return float(np.var(values))  # population variance, as in BI backends
    if agg.func == "stddev":
        return float(np.sqrt(np.var(values)))
    raise ExecutionError(f"unknown aggregate {agg.func!r}")


def _maybe_int(x: Any) -> Any:
    if isinstance(x, (np.integer, int)):
        return int(x)
    value = float(x)
    return int(value) if math.isclose(value, round(value)) and abs(value) < 2**53 else value


def _hash_join(left: Columns, right: Columns, left_col: str, right_col: str) -> Columns:
    """Inner equi-join; right side is the build side."""
    left_arrays = {k: _as_array(v) for k, v in left.items()}
    right_arrays = {k: _as_array(v) for k, v in right.items()}
    build: dict[Any, list[int]] = {}
    for idx, key in enumerate(right_arrays[right_col].tolist()):
        build.setdefault(key, []).append(idx)
    left_idx: list[int] = []
    right_idx: list[int] = []
    for idx, key in enumerate(left_arrays[left_col].tolist()):
        for r in build.get(key, ()):
            left_idx.append(idx)
            right_idx.append(r)
    li = np.asarray(left_idx, dtype=np.int64)
    ri = np.asarray(right_idx, dtype=np.int64)
    joined: dict[str, np.ndarray] = {}
    for name, arr in left_arrays.items():
        joined[name] = arr[li]
    for name, arr in right_arrays.items():
        if name not in joined:  # left side wins on duplicate names
            joined[name] = arr[ri]
    return joined


def execute_plain(tables: Mapping[str, Columns], query: Query) -> list[ResultRow]:
    """Execute a query against plaintext tables; rows as ordered dicts."""
    columns = dict(tables_get(tables, query.table))
    if query.join is not None:
        right = tables_get(tables, query.join.table)
        columns = dict(
            _hash_join(columns, right, query.join.left_column, query.join.right_column)
        )
    nrows = len(next(iter(columns.values()))) if columns else 0
    mask = evaluate_predicate(columns, query.where, nrows)
    selected = {name: _as_array(col)[mask] for name, col in columns.items()}

    if not query.is_aggregation():
        out_cols = [item.name for item in query.select if isinstance(item, ColumnRef)]
        rows = [
            {name: _scalar(selected[name][j]) for name in out_cols}
            for j in range(int(mask.sum()))
        ]
        return _order_and_limit(rows, query)

    if query.group_by:
        rows = _grouped_aggregation(selected, query)
    else:
        rows = [_flat_aggregation(selected, query, int(mask.sum()))]
    return _order_and_limit(rows, query)


def tables_get(tables: Mapping[str, Columns], name: str) -> Columns:
    try:
        return tables[name]
    except KeyError:
        raise ExecutionError(
            f"unknown table {name!r}; available: {sorted(tables)}"
        ) from None


def _scalar(x: Any) -> Any:
    if isinstance(x, np.generic):
        return x.item()
    return x


def _flat_aggregation(selected: Columns, query: Query, count: int) -> ResultRow:
    row: ResultRow = {}
    for item in query.select:
        if isinstance(item, ColumnRef):
            raise ExecutionError(
                f"bare column {item.name!r} in an ungrouped aggregation"
            )
        values = None if item.column is None else _numeric(_get(selected, item.column))
        if item.func == "count":
            row[item.output_name()] = count if values is None else int(len(values))
        else:
            row[item.output_name()] = compute_aggregate(item, values)
    return row


def _grouped_aggregation(selected: Columns, query: Query) -> list[ResultRow]:
    key_arrays = [_as_array(_get(selected, g)) for g in query.group_by]
    nrows = len(key_arrays[0]) if key_arrays else 0
    groups: dict[tuple, np.ndarray] = {}
    if nrows:
        keys = list(zip(*(a.tolist() for a in key_arrays)))
        index: dict[tuple, list[int]] = {}
        for j, k in enumerate(keys):
            index.setdefault(k, []).append(j)
        groups = {k: np.asarray(v, dtype=np.int64) for k, v in index.items()}
    rows: list[ResultRow] = []
    for key, idx in groups.items():
        row: ResultRow = {}
        for g, value in zip(query.group_by, key):
            row[g] = _scalar(value)
        for item in query.select:
            if isinstance(item, ColumnRef):
                if item.name not in query.group_by:
                    raise ExecutionError(
                        f"column {item.name!r} must appear in GROUP BY"
                    )
                continue
            values = (
                None if item.column is None else _numeric(_get(selected, item.column))[idx]
            )
            if item.func == "count":
                row[item.output_name()] = len(idx) if values is None else int(len(values))
            else:
                row[item.output_name()] = compute_aggregate(item, values)
        rows.append(row)
    return rows


def _numeric(arr: Any) -> np.ndarray:
    a = _as_array(arr)
    if a.dtype == object:
        return a.astype(np.float64)
    return a


def order_and_limit(rows: list[ResultRow], query: Query) -> list[ResultRow]:
    """Apply ORDER BY / deterministic group ordering / LIMIT to result rows.

    Shared by the plaintext executor and the Seabed decryption module so
    both pipelines emit rows in identical order.
    """
    return _order_and_limit(rows, query)


def _order_and_limit(rows: list[ResultRow], query: Query) -> list[ResultRow]:
    for name, descending in reversed(query.order_by):
        rows.sort(key=lambda r: r[name], reverse=descending)
    if not query.order_by and query.group_by:
        # Deterministic output order for tests.
        rows.sort(key=lambda r: tuple(str(r[g]) for g in query.group_by))
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows
