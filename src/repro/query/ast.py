"""The query AST shared by the planner, translator, and executors.

The node set covers the paper's workload analysis (Section 5): OLAP
aggregations (sum / count / avg / min / max / variance / stddev), filters
with equality, range, IN and BETWEEN predicates, boolean combinations,
group-by, a single equi-join (Big Data Benchmark query 3), order-by and
limit.  All nodes are frozen dataclasses, hence hashable and safely
shareable between the client-side planner and translator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

AGGREGATE_FUNCS = frozenset(
    {"sum", "count", "avg", "min", "max", "var", "stddev", "median"}
)

#: Aggregates computable on the Seabed server purely with ASHE sums
#: (Section 5, "support fully on the server" plus client division).
LINEAR_AGGS = frozenset({"sum", "count", "avg"})
#: Aggregates needing a client-side squared column (CPre in Table 6).
QUADRATIC_AGGS = frozenset({"var", "stddev"})
#: Aggregates served by order-revealing encryption.
ORDER_AGGS = frozenset({"min", "max", "median"})

Literal = Union[int, float, str]


@dataclass(frozen=True)
class Param:
    """A named placeholder for a literal, bound at execution time.

    Appears wherever a :data:`Literal` may (comparison values, IN lists,
    BETWEEN bounds); ``SeabedSession.prepare`` translates the query once
    with the placeholder and ``PreparedQuery.execute`` re-binds fresh
    encryption tokens for each set of values without re-planning.  In
    SQL, ``:name`` parses to ``Param("name")``.
    """

    name: str


#: What a predicate may compare against: a concrete literal or a Param.
Value = Union[Literal, Param]


@dataclass(frozen=True)
class ColumnRef:
    """A bare column in the select list (only valid with GROUP BY)."""

    name: str

    def output_name(self) -> str:
        return self.name


@dataclass(frozen=True)
class Aggregate:
    """``func(column)`` with an optional alias; ``column=None`` is ``*``."""

    func: str
    column: str | None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.column is None and self.func != "count":
            raise ValueError(f"{self.func}(*) is not meaningful")

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return f"{self.func}({self.column or '*'})"


SelectItem = Union[ColumnRef, Aggregate]


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` with op in = != < <= > >=."""

    column: str
    op: str
    value: Value

    _OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    @property
    def is_equality(self) -> bool:
        return self.op == "="

    @property
    def is_range(self) -> bool:
        return self.op in ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class InList:
    column: str
    values: tuple[Value, ...]


@dataclass(frozen=True)
class Between:
    column: str
    low: Value
    high: Value


@dataclass(frozen=True)
class And:
    children: tuple["Predicate", ...]


@dataclass(frozen=True)
class Or:
    children: tuple["Predicate", ...]


@dataclass(frozen=True)
class Not:
    child: "Predicate"


Predicate = Union[Comparison, InList, Between, And, Or, Not]


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON left_column = right_column`` (equi-join only)."""

    table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class Query:
    select: tuple[SelectItem, ...]
    table: str
    join: JoinClause | None = None
    where: Predicate | None = None
    group_by: tuple[str, ...] = ()
    order_by: tuple[tuple[str, bool], ...] = ()  # (name, descending)
    limit: int | None = None

    # -- structural helpers used by the planner ------------------------------

    def aggregates(self) -> list[Aggregate]:
        return [item for item in self.select if isinstance(item, Aggregate)]

    def is_aggregation(self) -> bool:
        return bool(self.aggregates())

    def measure_columns(self) -> set[str]:
        """Columns that appear inside aggregate functions."""
        return {a.column for a in self.aggregates() if a.column is not None}

    def dimension_columns(self) -> set[str]:
        """Columns used to filter or group rows."""
        dims = set(self.group_by)
        dims |= predicate_columns(self.where)
        if self.join is not None:
            dims |= {self.join.left_column, self.join.right_column}
        return dims

    def join_columns(self) -> set[str]:
        if self.join is None:
            return set()
        return {self.join.left_column, self.join.right_column}


def query_params(query: Query) -> tuple[str, ...]:
    """Parameter names mentioned in a query, in first-occurrence order.

    Only predicates may hold :class:`Param` placeholders; the walk visits
    conjuncts/disjuncts left to right so positional binding is stable.
    """
    seen: list[str] = []

    def note(value: Value) -> None:
        if isinstance(value, Param) and value.name not in seen:
            seen.append(value.name)

    def visit(node: Predicate | None) -> None:
        if node is None:
            return
        if isinstance(node, Comparison):
            note(node.value)
        elif isinstance(node, InList):
            for v in node.values:
                note(v)
        elif isinstance(node, Between):
            note(node.low)
            note(node.high)
        elif isinstance(node, Not):
            visit(node.child)
        elif isinstance(node, (And, Or)):
            for child in node.children:
                visit(child)

    visit(query.where)
    return tuple(seen)


def predicate_columns(pred: Predicate | None) -> set[str]:
    """All column names mentioned in a predicate tree."""
    if pred is None:
        return set()
    if isinstance(pred, (Comparison, InList, Between)):
        return {pred.column}
    if isinstance(pred, Not):
        return predicate_columns(pred.child)
    if isinstance(pred, (And, Or)):
        out: set[str] = set()
        for child in pred.children:
            out |= predicate_columns(child)
        return out
    raise TypeError(f"unknown predicate node {type(pred).__name__}")


def predicate_usage(pred: Predicate | None) -> dict[str, set[str]]:
    """Map column -> set of predicate kinds (``eq``, ``range``, ``in``).

    The planner uses this to decide between SPLASHE (equality-only
    dimensions), ORE (range dimensions) and DET (join dimensions).
    """
    usage: dict[str, set[str]] = {}

    def visit(node: Predicate | None) -> None:
        if node is None:
            return
        if isinstance(node, Comparison):
            kind = "eq" if node.op in ("=", "!=") else "range"
            usage.setdefault(node.column, set()).add(kind)
        elif isinstance(node, InList):
            usage.setdefault(node.column, set()).add("eq")
        elif isinstance(node, Between):
            usage.setdefault(node.column, set()).add("range")
        elif isinstance(node, Not):
            visit(node.child)
        elif isinstance(node, (And, Or)):
            for child in node.children:
                visit(child)

    visit(pred)
    return usage
