"""A fluent builder for the Seabed SQL subset.

Compiles chained method calls straight to the :mod:`repro.query.ast`
nodes the planner and translator already consume, so builder queries and
parsed SQL are interchangeable everywhere::

    from repro.query.builder import QueryBuilder, col

    q = (QueryBuilder("uservisits")
         .where(col("pageRank") > 100)
         .group_by("hour")
         .sum("adRevenue")
         .build())

When obtained from a session (``session.table("uservisits")``) the
builder is also executable in place: ``.execute()`` routes through the
session's cached translation path and ``.prepare()`` returns a
:class:`~repro.core.session.PreparedQuery`.

Builders are immutable: every method returns a new builder, so a shared
prefix (say, a filtered table) can fan out into many queries safely.

:func:`render_sql` is the inverse of :func:`~repro.query.parser.parse_query`
for every query the builder can produce; the property tests assert the
round-trip ``parse_query(render_sql(q)) == q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import TranslationError
from repro.query.ast import (
    Aggregate,
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    JoinClause,
    Not,
    Or,
    Param,
    Predicate,
    Query,
    SelectItem,
    Value,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.session import PreparedQuery, QueryResult, SeabedSession


# ---------------------------------------------------------------------------
# Column expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Col:
    """A column reference that builds predicates through comparison
    operators: ``col("pageRank") > 100`` is ``Comparison("pageRank", ">",
    100)``."""

    name: str

    def __gt__(self, other: Value) -> Comparison:
        return Comparison(self.name, ">", other)

    def __ge__(self, other: Value) -> Comparison:
        return Comparison(self.name, ">=", other)

    def __lt__(self, other: Value) -> Comparison:
        return Comparison(self.name, "<", other)

    def __le__(self, other: Value) -> Comparison:
        return Comparison(self.name, "<=", other)

    def __eq__(self, other: object) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "=", other)  # type: ignore[arg-type]

    def __ne__(self, other: object) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "!=", other)  # type: ignore[arg-type]

    # Comparison operators hijack __eq__, so Col cannot sit in sets/dicts.
    __hash__ = None  # type: ignore[assignment]

    def isin(self, *values: Value) -> InList:
        if len(values) == 1 and isinstance(values[0], (list, tuple)):
            values = tuple(values[0])
        if not values:
            raise TranslationError("IN () needs at least one value")
        return InList(self.name, tuple(values))

    def between(self, low: Value, high: Value) -> Between:
        return Between(self.name, low, high)


def col(name: str) -> Col:
    """Shorthand constructor: ``col("pageRank") > 100``."""
    return Col(name)


def and_(*predicates: Predicate) -> Predicate:
    """Conjunction; nested ANDs are flattened (matching the parser)."""
    flat: list[Predicate] = []
    for p in predicates:
        flat.extend(p.children) if isinstance(p, And) else flat.append(p)
    if not flat:
        raise TranslationError("and_() needs at least one predicate")
    return flat[0] if len(flat) == 1 else And(tuple(flat))


def or_(*predicates: Predicate) -> Predicate:
    """Disjunction; nested ORs are flattened (matching the parser)."""
    flat: list[Predicate] = []
    for p in predicates:
        flat.extend(p.children) if isinstance(p, Or) else flat.append(p)
    if not flat:
        raise TranslationError("or_() needs at least one predicate")
    return flat[0] if len(flat) == 1 else Or(tuple(flat))


def not_(predicate: Predicate) -> Not:
    return Not(predicate)


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------

_AGG_SHORTHANDS = ("sum", "avg", "min", "max", "var", "stddev", "median")


class QueryBuilder:
    """Immutable fluent builder; terminal methods are :meth:`build`,
    :meth:`sql`, and (when session-bound) :meth:`execute` /
    :meth:`prepare`."""

    def __init__(self, table: str, session: "SeabedSession | None" = None):
        self._table = table
        self._session = session
        self._select: tuple[SelectItem, ...] = ()
        self._join: JoinClause | None = None
        self._where: Predicate | None = None
        self._group_by: tuple[str, ...] = ()
        self._order_by: tuple[tuple[str, bool], ...] = ()
        self._limit: int | None = None

    # -- plumbing ------------------------------------------------------------

    def _clone(self, **changes: Any) -> "QueryBuilder":
        out = QueryBuilder(self._table, self._session)
        out._select = self._select
        out._join = self._join
        out._where = self._where
        out._group_by = self._group_by
        out._order_by = self._order_by
        out._limit = self._limit
        for key, value in changes.items():
            setattr(out, key, value)
        return out

    # -- select list -----------------------------------------------------------

    def select(self, *names: str) -> "QueryBuilder":
        """Add bare columns to the select list (valid with GROUP BY)."""
        items = self._select + tuple(ColumnRef(n) for n in names)
        return self._clone(_select=items)

    def agg(self, func: str, column: str | None = None,
            alias: str | None = None) -> "QueryBuilder":
        item = Aggregate(func=func, column=column, alias=alias)
        return self._clone(_select=self._select + (item,))

    def count(self, column: str | None = None,
              alias: str | None = None) -> "QueryBuilder":
        return self.agg("count", column, alias)

    # sum/avg/min/max/var/stddev/median shortcuts share one shape.
    def sum(self, column: str, alias: str | None = None) -> "QueryBuilder":
        return self.agg("sum", column, alias)

    def avg(self, column: str, alias: str | None = None) -> "QueryBuilder":
        return self.agg("avg", column, alias)

    def min(self, column: str, alias: str | None = None) -> "QueryBuilder":
        return self.agg("min", column, alias)

    def max(self, column: str, alias: str | None = None) -> "QueryBuilder":
        return self.agg("max", column, alias)

    def var(self, column: str, alias: str | None = None) -> "QueryBuilder":
        return self.agg("var", column, alias)

    def stddev(self, column: str, alias: str | None = None) -> "QueryBuilder":
        return self.agg("stddev", column, alias)

    def median(self, column: str, alias: str | None = None) -> "QueryBuilder":
        return self.agg("median", column, alias)

    # -- clauses ---------------------------------------------------------------

    def join(self, table: str, left: str, right: str) -> "QueryBuilder":
        """Equi-join: ``JOIN table ON left = right``."""
        return self._clone(_join=JoinClause(table, left, right))

    def where(self, predicate: Predicate) -> "QueryBuilder":
        """Filter rows; repeated calls AND together (like the parser's
        top-level conjunction)."""
        combined = (
            predicate if self._where is None else and_(self._where, predicate)
        )
        return self._clone(_where=combined)

    def group_by(self, *names: str) -> "QueryBuilder":
        return self._clone(_group_by=self._group_by + names)

    def order_by(self, name: str, descending: bool = False) -> "QueryBuilder":
        return self._clone(_order_by=self._order_by + ((name, descending),))

    def limit(self, n: int) -> "QueryBuilder":
        return self._clone(_limit=n)

    # -- terminals --------------------------------------------------------------

    def build(self) -> Query:
        """Compile to the AST.  Grouped queries with no explicit bare
        columns get their group keys prepended, so
        ``.group_by("hour").sum("x")`` selects ``hour, sum(x)``."""
        select = self._select
        if not select:
            raise TranslationError(
                f"empty select list on table {self._table!r}; add an "
                "aggregate (e.g. .sum(col)) or .select(columns)"
            )
        has_refs = any(isinstance(item, ColumnRef) for item in select)
        if self._group_by and not has_refs:
            select = tuple(ColumnRef(n) for n in self._group_by) + select
        return Query(
            select=select,
            table=self._table,
            join=self._join,
            where=self._where,
            group_by=self._group_by,
            order_by=self._order_by,
            limit=self._limit,
        )

    def sql(self) -> str:
        return render_sql(self.build())

    def _require_session(self) -> "SeabedSession":
        if self._session is None:
            raise TranslationError(
                "this builder is not bound to a session; use "
                "session.table(name) or pass .build() to a session"
            )
        return self._session

    def execute(
        self,
        *args: Any,
        expected_groups: int | None = None,
        compress_at: str = "worker",
        user: str | None = None,
        **params: Any,
    ) -> "QueryResult":
        """Run through the session's cached translation path.  Positional
        / keyword values bind any :class:`Param` placeholders (positional
        values follow declaration order)."""
        from repro.query.ast import query_params

        session = self._require_session()
        query = self.build()
        names = query_params(query)
        if len(args) > len(names):
            raise TranslationError(
                f"{len(args)} positional values for {len(names)} "
                f"parameter(s) {list(names)!r}"
            )
        bound = dict(zip(names, args))
        overlap = set(bound) & set(params)
        if overlap:
            raise TranslationError(
                f"parameters {sorted(overlap)!r} bound both positionally "
                "and by name"
            )
        bound.update(params)
        return session.query(
            query, expected_groups=expected_groups,
            compress_at=compress_at, user=user, **bound,
        )

    def prepare(
        self,
        expected_groups: int | None = None,
        compress_at: str = "worker",
    ) -> "PreparedQuery":
        return self._require_session().prepare(
            self.build(), expected_groups=expected_groups,
            compress_at=compress_at,
        )

    def __repr__(self) -> str:
        try:
            return f"QueryBuilder({self.sql()!r})"
        except TranslationError:
            return f"QueryBuilder(table={self._table!r}, select=<empty>)"


# ---------------------------------------------------------------------------
# SQL rendering (the parser's inverse)
# ---------------------------------------------------------------------------


def _render_value(value: Value) -> str:
    if isinstance(value, Param):
        return f":{value.name}"
    if isinstance(value, bool):
        raise TranslationError("boolean literals are not in the SQL subset")
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, (int, float)) and value < 0:
        raise TranslationError(
            "negative literals are not in the SQL subset (the grammar "
            "has no unary minus); filter on a shifted column instead"
        )
    if isinstance(value, float):
        text = repr(value)
        # The grammar only accepts \d+.\d+ -- no exponents or bare dots.
        if "e" in text or "E" in text or "." not in text:
            text = f"{value:.10f}"
            if float(text) != value:
                raise TranslationError(
                    f"float literal {value!r} cannot be rendered exactly "
                    "in the SQL subset (no exponent syntax)"
                )
        return text
    if isinstance(value, int):
        return str(value)
    raise TranslationError(f"cannot render literal {value!r}")


def _render_predicate(pred: Predicate, parent: str = "or") -> str:
    """Render with the minimal parens that make parse(render(p)) == p.

    ``parent`` is the context precedence: AND children that are ORs need
    parens; NOT operands always get them (NOT binds tightest).
    """
    if isinstance(pred, Comparison):
        return f"{pred.column} {pred.op} {_render_value(pred.value)}"
    if isinstance(pred, Between):
        return (
            f"{pred.column} BETWEEN {_render_value(pred.low)} "
            f"AND {_render_value(pred.high)}"
        )
    if isinstance(pred, InList):
        inner = ", ".join(_render_value(v) for v in pred.values)
        return f"{pred.column} IN ({inner})"
    if isinstance(pred, Not):
        return f"NOT ({_render_predicate(pred.child, 'or')})"
    if isinstance(pred, And):
        parts = [_render_predicate(c, "and") for c in pred.children]
        text = " AND ".join(parts)
        return f"({text})" if parent == "not" else text
    if isinstance(pred, Or):
        parts = [_render_predicate(c, "or") for c in pred.children]
        text = " OR ".join(parts)
        return f"({text})" if parent in ("and", "not") else text
    raise TranslationError(f"cannot render predicate {type(pred).__name__}")


def _render_item(item: SelectItem) -> str:
    if isinstance(item, ColumnRef):
        return item.name
    target = item.column if item.column is not None else "*"
    text = f"{item.func}({target})"
    if item.alias:
        text += f" AS {item.alias}"
    return text


def render_sql(query: Query) -> str:
    """Render a query AST back to SQL that reparses to an equal AST."""
    parts = ["SELECT " + ", ".join(_render_item(i) for i in query.select)]
    parts.append(f"FROM {query.table}")
    if query.join is not None:
        parts.append(
            f"JOIN {query.join.table} ON {query.join.left_column} = "
            f"{query.join.right_column}"
        )
    if query.where is not None:
        parts.append("WHERE " + _render_predicate(query.where))
    if query.group_by:
        parts.append("GROUP BY " + ", ".join(query.group_by))
    if query.order_by:
        rendered = ", ".join(
            f"{name} DESC" if descending else f"{name} ASC"
            for name, descending in query.order_by
        )
        parts.append("ORDER BY " + rendered)
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)
