"""The canonical ID-list representation: sorted, unique, run-compressed.

Seabed uploads rows with contiguous identifiers, so the ID list attached to
an aggregation result is overwhelmingly made of long runs (Section 6.6
measures ~26k AES operations for 210M aggregated rows).  We therefore store
an ID list as parallel arrays of inclusive ``[start, end]`` runs, which is
simultaneously the in-memory working form and the input to the range
encoder.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import EncodingError

_U64 = np.uint64
_ONE = _U64(1)


class IdList:
    """An immutable sorted set of unique 64-bit row identifiers.

    Stored as inclusive runs.  All constructors validate (or establish)
    sortedness and uniqueness; set algebra is vectorised.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, starts: np.ndarray, ends: np.ndarray, _validated: bool = False):
        starts = np.asarray(starts, dtype=_U64)
        ends = np.asarray(ends, dtype=_U64)
        if not _validated:
            if starts.shape != ends.shape or starts.ndim != 1:
                raise EncodingError("run arrays must be 1-D and equal length")
            if np.any(ends < starts):
                raise EncodingError("run end below run start")
            if len(starts) > 1:
                if np.any(starts[1:] <= ends[:-1]):
                    raise EncodingError("runs overlap or are unsorted")
        self._starts = starts
        self._ends = ends

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "IdList":
        return cls(np.empty(0, _U64), np.empty(0, _U64), _validated=True)

    @classmethod
    def from_range(cls, start: int, stop: int) -> "IdList":
        """IDs in the half-open interval ``[start, stop)``."""
        if stop <= start:
            return cls.empty()
        return cls(
            np.array([start], _U64), np.array([stop - 1], _U64), _validated=True
        )

    @classmethod
    def from_ids(cls, ids: Iterable[int] | np.ndarray) -> "IdList":
        """Build from an array of IDs; must be strictly increasing."""
        arr = np.asarray(list(ids) if not isinstance(ids, np.ndarray) else ids)
        if arr.size == 0:
            return cls.empty()
        arr = arr.astype(_U64)
        if arr.size > 1 and np.any(arr[1:] <= arr[:-1]):
            raise EncodingError("IDs must be strictly increasing")
        return cls._from_sorted_unique(arr)

    @classmethod
    def from_mask(cls, mask: np.ndarray, offset: int = 0) -> "IdList":
        """Build from a boolean selection mask; row ``j`` gets ID ``offset+j``."""
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return cls.empty()
        return cls._from_sorted_unique(idx.astype(_U64) + _U64(offset))

    @classmethod
    def _from_sorted_unique(cls, arr: np.ndarray) -> "IdList":
        breaks = np.flatnonzero(np.diff(arr) != _ONE)
        starts = arr[np.r_[0, breaks + 1]]
        ends = arr[np.r_[breaks, arr.size - 1]]
        return cls(starts, ends, _validated=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def starts(self) -> np.ndarray:
        return self._starts

    @property
    def ends(self) -> np.ndarray:
        return self._ends

    @property
    def num_runs(self) -> int:
        return int(self._starts.size)

    def count(self) -> int:
        """Number of IDs in the list."""
        if self._starts.size == 0:
            return 0
        return int(np.sum(self._ends - self._starts + _ONE))

    def is_empty(self) -> bool:
        return self._starts.size == 0

    def runs(self) -> Iterator[tuple[int, int]]:
        """Yield inclusive ``(start, end)`` runs in order."""
        for s, e in zip(self._starts.tolist(), self._ends.tolist()):
            yield s, e

    def to_ids(self) -> np.ndarray:
        """Materialise the full ID array (uint64)."""
        if self._starts.size == 0:
            return np.empty(0, _U64)
        lengths = (self._ends - self._starts + _ONE).astype(np.int64)
        total = int(lengths.sum())
        reps = np.repeat(self._starts, lengths)
        within = np.arange(total, dtype=_U64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        ).astype(_U64)
        return reps + within

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def union(self, other: "IdList") -> "IdList":
        """Merge two ID lists (duplicate IDs collapse; ASHE never makes any)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        starts = np.concatenate([self._starts, other._starts])
        ends = np.concatenate([self._ends, other._ends])
        order = np.argsort(starts, kind="stable")
        s, e = starts[order], ends[order]
        cummax_e = np.maximum.accumulate(e)
        new_group = np.empty(s.size, dtype=bool)
        new_group[0] = True
        # A run starts a new merged group when it begins after the furthest
        # end so far plus one (adjacent runs coalesce).
        new_group[1:] = s[1:] > cummax_e[:-1] + _ONE
        group_starts = np.flatnonzero(new_group)
        merged_s = s[new_group]
        merged_e = np.maximum.reduceat(e, group_starts)
        return IdList(merged_s, merged_e, _validated=True)

    @staticmethod
    def union_all(parts: Iterable["IdList"]) -> "IdList":
        """Union many ID lists at once (driver-side merge of worker results)."""
        parts = [p for p in parts if not p.is_empty()]
        if not parts:
            return IdList.empty()
        if len(parts) == 1:
            return parts[0]
        starts = np.concatenate([p._starts for p in parts])
        ends = np.concatenate([p._ends for p in parts])
        order = np.argsort(starts, kind="stable")
        s, e = starts[order], ends[order]
        cummax_e = np.maximum.accumulate(e)
        new_group = np.empty(s.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = s[1:] > cummax_e[:-1] + _ONE
        group_starts = np.flatnonzero(new_group)
        return IdList(s[new_group], np.maximum.reduceat(e, group_starts), _validated=True)

    def contains(self, i: int) -> bool:
        if self.is_empty():
            return False
        pos = int(np.searchsorted(self._starts, _U64(i), side="right")) - 1
        if pos < 0:
            return False
        return bool(self._ends[pos] >= _U64(i))

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IdList):
            return NotImplemented
        return bool(
            np.array_equal(self._starts, other._starts)
            and np.array_equal(self._ends, other._ends)
        )

    def __hash__(self) -> int:
        return hash((self._starts.tobytes(), self._ends.tobytes()))

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        preview = ", ".join(f"{s}-{e}" for s, e in list(self.runs())[:4])
        suffix = ", ..." if self.num_runs > 4 else ""
        return f"IdList([{preview}{suffix}] runs={self.num_runs} count={self.count()})"
