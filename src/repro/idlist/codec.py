"""Composable ID-list codec pipelines (paper Section 4.5, Figure 8).

A codec is a self-describing byte format: one header byte of flags, then a
payload.  The stages mirror the paper exactly:

1. optional **range** transform (runs instead of raw IDs);
2. optional **diff** transform (deltas instead of absolutes; applied to a
   range sequence this is the paper's *Combination*);
3. **variable-byte** packing (always -- it is the serialisation);
4. optional **Deflate** at a *fast* (level 1) or *compact* (level 9)
   setting.

Bitmap codecs bypass stages 1-3.  The named combinations in
:data:`CODECS` are the exact series of Figure 8(a)/(b) plus the group-by
codec (VB+Diff without ranges, Section 4.5) and baselines.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import EncodingError
from repro.idlist import bitmap, encoding, varbyte
from repro.idlist.idlist import IdList

_FLAG_RANGES = 0x01
_FLAG_DIFF = 0x02
_FLAG_DEFLATE = 0x04
_FLAG_BITMAP_PLAIN = 0x08
_FLAG_BITMAP_WAH = 0x10
_FLAG_FIXED64 = 0x20


@dataclass(frozen=True)
class IdListCodec:
    """One configured encode/decode pipeline."""

    name: str
    use_ranges: bool = True
    use_diff: bool = True
    deflate_level: int | None = None
    bitmap_kind: str | None = None  # None | "plain" | "wah"
    fixed_width: bool = False  # raw 8-byte IDs, the uncompressed baseline

    def encode(self, ids: IdList) -> bytes:
        if self.fixed_width:
            return bytes([_FLAG_FIXED64]) + ids.to_ids().tobytes()
        if self.bitmap_kind == "plain":
            return bytes([_FLAG_BITMAP_PLAIN]) + bitmap.plain_encode(ids)
        if self.bitmap_kind == "wah":
            return bytes([_FLAG_BITMAP_WAH]) + bitmap.wah_encode(ids)

        flags = 0
        if self.use_ranges:
            flags |= _FLAG_RANGES
            if self.use_diff:
                flags |= _FLAG_DIFF
                seq = encoding.combination_encode(ids)
            else:
                seq = encoding.ranges_flatten(ids)
        else:
            seq = ids.to_ids()
            if self.use_diff:
                flags |= _FLAG_DIFF
                seq = encoding.diff_encode(seq)
        payload = varbyte.encode(seq)
        if self.deflate_level is not None:
            flags |= _FLAG_DEFLATE
            payload = zlib.compress(payload, self.deflate_level)
        return bytes([flags]) + payload

    def decode(self, data: bytes) -> IdList:
        return decode(data)

    def encoded_size(self, ids: IdList) -> int:
        return len(self.encode(ids))


def decode(data: bytes) -> IdList:
    """Decode any codec output (the header byte is self-describing)."""
    if not data:
        raise EncodingError("empty codec payload")
    flags, payload = data[0], data[1:]
    if flags & _FLAG_FIXED64:
        return IdList.from_ids(np.frombuffer(payload, dtype=np.uint64))
    if flags & _FLAG_BITMAP_PLAIN:
        return bitmap.plain_decode(payload)
    if flags & _FLAG_BITMAP_WAH:
        return bitmap.wah_decode(payload)
    if flags & _FLAG_DEFLATE:
        payload = zlib.decompress(payload)
    seq = varbyte.decode(payload)
    if flags & _FLAG_RANGES:
        if flags & _FLAG_DIFF:
            return encoding.combination_decode(seq)
        return encoding.ranges_unflatten(seq)
    if flags & _FLAG_DIFF:
        seq = encoding.diff_decode(seq)
    return IdList.from_ids(seq)


#: Named pipelines. ``seabed`` is the paper's production choice
#: (Section 6.4): ranges + VB + diff + Deflate optimised for speed.
#: ``groupby`` is the paper's group-by path: VB + diff, no ranges.
CODECS: dict[str, IdListCodec] = {
    "fixed64": IdListCodec(
        "fixed64", use_ranges=False, use_diff=False, fixed_width=True
    ),
    "vb": IdListCodec("vb", use_ranges=False, use_diff=False),
    "vb+diff": IdListCodec("vb+diff", use_ranges=False, use_diff=True),
    "ranges+vb": IdListCodec("ranges+vb", use_ranges=True, use_diff=False),
    "ranges+vb+diff": IdListCodec("ranges+vb+diff", use_ranges=True, use_diff=True),
    "ranges+vb+diff+deflate_compact": IdListCodec(
        "ranges+vb+diff+deflate_compact",
        use_ranges=True,
        use_diff=True,
        deflate_level=9,
    ),
    "ranges+vb+diff+deflate_fast": IdListCodec(
        "ranges+vb+diff+deflate_fast",
        use_ranges=True,
        use_diff=True,
        deflate_level=1,
    ),
    "bitmap": IdListCodec("bitmap", bitmap_kind="plain"),
    "bitmap_wah": IdListCodec("bitmap_wah", bitmap_kind="wah"),
}
CODECS["seabed"] = IdListCodec(
    "seabed", use_ranges=True, use_diff=True, deflate_level=1
)
CODECS["groupby"] = IdListCodec("groupby", use_ranges=False, use_diff=True)


_FLAG_MULTISET = 0x40


def encode_groups_vb_diff(
    sorted_ids: np.ndarray, starts: np.ndarray, bounds: np.ndarray
) -> list[bytes]:
    """Encode many per-group ID lists in two vectorised passes.

    ``sorted_ids`` holds every selected row ID ordered by (group, id);
    ``starts``/``bounds`` delimit the groups.  Diff-encoding the whole
    array (re-anchoring each group's first element to its absolute ID) and
    variable-byte-packing once lets each group's payload be a byte *slice*
    of the shared stream -- the per-group Python cost drops to a slice and
    a header byte.  Output chunks decode with the standard self-describing
    decoder (VB+Diff, the paper's group-by codec).
    """
    ids = np.asarray(sorted_ids, dtype=np.uint64)
    if ids.size == 0:
        return []
    seq = np.empty_like(ids)
    seq[0] = ids[0]
    seq[1:] = ids[1:] - ids[:-1]
    seq[starts] = ids[starts]  # re-anchor each group
    payload, offsets = varbyte.encode_with_offsets(seq)
    header = bytes([_FLAG_DIFF])
    return [
        header + payload[offsets[int(starts[g])] : offsets[int(bounds[g + 1])]]
        for g in range(len(starts))
    ]


def encode_multiset(ids: np.ndarray, deflate_level: int | None = 1) -> bytes:
    """Encode an ID *multiset* (duplicates allowed) -- the join path.

    ASHE ID collections are multisets (Section 3.1): when a build-side row
    joins several probe rows its identifier appears once per match.  The
    run-based :class:`IdList` cannot hold duplicates, so joined aggregates
    ship sorted raw IDs through diff + varbyte + Deflate instead.
    """
    arr = np.sort(np.asarray(ids, dtype=np.uint64))
    seq = encoding.diff_encode(arr)
    payload = varbyte.encode(seq)
    flags = _FLAG_MULTISET | _FLAG_DIFF
    if deflate_level is not None:
        flags |= _FLAG_DEFLATE
        payload = zlib.compress(payload, deflate_level)
    return bytes([flags]) + payload


def encode_id_spans(starts: np.ndarray, counts: np.ndarray) -> bytes:
    """Encode per-partition row-ID spans with the ID-list pipeline.

    A partition store's manifest records each partition as the half-open
    row-ID interval ``[start, start + count)``.  Those intervals are
    exactly the (start, length) pairs of the range transform, so the
    store reuses this module's serialisation: interleave
    ``start_0, count_0, start_1, count_1, ...``, diff-encode the starts
    (partition starts are sorted, Section 4.2's consecutive-ID property),
    and variable-byte pack.  Self-describing via the shared flag byte.
    """
    starts = np.asarray(starts, dtype=np.uint64)
    counts = np.asarray(counts, dtype=np.uint64)
    if starts.shape != counts.shape:
        raise EncodingError("id spans need one count per start")
    if starts.size and bool(np.any(starts[1:] < starts[:-1])):
        raise EncodingError("id-span starts must be sorted")
    seq = np.empty(2 * starts.size, dtype=np.uint64)
    if starts.size:
        seq[0::2] = encoding.diff_encode(starts)
        seq[1::2] = counts
    return bytes([_FLAG_RANGES | _FLAG_DIFF]) + varbyte.encode(seq)


def decode_id_spans(data: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Decode :func:`encode_id_spans` output back to (starts, counts)."""
    if not data or data[0] != (_FLAG_RANGES | _FLAG_DIFF):
        raise EncodingError("not an id-span codec payload")
    seq = varbyte.decode(data[1:])
    if seq.size % 2:
        raise EncodingError("truncated id-span payload")
    starts = encoding.diff_decode(seq[0::2])
    return starts, seq[1::2].copy()


_FLAG_GROUPED = 0x80


def encode_span_groups(groups: list[list[tuple[int, int]]]) -> bytes:
    """Encode per-partition *groups* of (start, count) row-ID spans.

    A freshly written partition covers one contiguous ID interval, but a
    partition produced by store compaction absorbs rows from several
    source partitions, so its manifest entry records multiple spans --
    one group of (start, count) pairs per output partition.  The
    serialisation reuses the ID-span machinery: each group contributes
    its span count followed by its spans, with starts diff-encoded
    across the *whole* stream (groups tile the table's ID space in
    order, so starts are globally sorted) and the sequence
    variable-byte packed under a self-describing flag byte.
    """
    seq: list[int] = []
    prev = 0
    for group in groups:
        if not group:
            raise EncodingError("span groups must hold at least one span each")
        seq.append(len(group))
        for start, count in group:
            if start < prev:
                raise EncodingError("span-group starts must be globally sorted")
            seq.append(start - prev)
            seq.append(count)
            prev = start
    flags = _FLAG_GROUPED | _FLAG_RANGES | _FLAG_DIFF
    return bytes([flags]) + varbyte.encode(np.asarray(seq, dtype=np.uint64))


def decode_span_groups(data: bytes) -> list[list[tuple[int, int]]]:
    """Decode :func:`encode_span_groups` output back to span groups."""
    if not data or data[0] != (_FLAG_GROUPED | _FLAG_RANGES | _FLAG_DIFF):
        raise EncodingError("not a span-group codec payload")
    seq = varbyte.decode(data[1:]).tolist()
    groups: list[list[tuple[int, int]]] = []
    pos = 0
    prev = 0
    while pos < len(seq):
        size = seq[pos]
        pos += 1
        if size == 0 or pos + 2 * size > len(seq):
            raise EncodingError("truncated span-group payload")
        group: list[tuple[int, int]] = []
        for _ in range(size):
            prev += seq[pos]
            group.append((prev, seq[pos + 1]))
            pos += 2
        groups.append(group)
    return groups


def decode_multiset(data: bytes) -> np.ndarray:
    """Decode a multiset payload back to the sorted uint64 ID array."""
    if not data or not data[0] & _FLAG_MULTISET:
        raise EncodingError("not a multiset codec payload")
    flags, payload = data[0], data[1:]
    if flags & _FLAG_DEFLATE:
        payload = zlib.decompress(payload)
    seq = varbyte.decode(payload)
    return encoding.diff_decode(seq)


def is_multiset_payload(data: bytes) -> bool:
    return bool(data) and bool(data[0] & _FLAG_MULTISET)


def decode_chunks_batch(chunks: list[bytes]) -> tuple[np.ndarray, np.ndarray]:
    """Decode many chunks into one ID array plus per-chunk counts.

    The client receives one encoded chunk per (group, partition) -- easily
    thousands per query -- so per-chunk Python overhead dominates naive
    decoding.  When every chunk uses the group-by VB+Diff format this
    decodes the concatenated payload in a handful of numpy passes and
    splits on vectorised chunk boundaries; other formats fall back to
    per-chunk decoding.

    Returns ``(ids, counts)`` where ``counts[i]`` is chunk ``i``'s ID count
    and ``ids`` is their concatenation in chunk order (duplicates preserved
    for multiset chunks).
    """
    if not chunks:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    if all(len(c) > 1 and c[0] == _FLAG_DIFF for c in chunks):
        payload_lengths = np.asarray([len(c) - 1 for c in chunks], dtype=np.int64)
        blob = b"".join(c[1:] for c in chunks)
        raw = np.frombuffer(blob, dtype=np.uint8)
        seq = varbyte.decode(blob)
        # Values per chunk: terminal bytes (high bit clear) per byte span.
        terminal_cum = np.cumsum((raw & 0x80) == 0)
        byte_bounds = np.cumsum(payload_lengths)
        value_bounds = terminal_cum[byte_bounds - 1]
        counts = np.diff(np.concatenate([[0], value_bounds])).astype(np.int64)
        starts = np.concatenate([[0], value_bounds[:-1]]).astype(np.int64)
        # Segmented cumsum: each chunk's first value is absolute.
        totals = np.cumsum(seq, dtype=np.uint64)
        base = np.zeros(len(chunks), dtype=np.uint64)
        base[1:] = totals[starts[1:] - 1]
        ids = totals - np.repeat(base, counts)
        return ids, counts
    pieces: list[np.ndarray] = []
    counts_list: list[int] = []
    for chunk in chunks:
        if is_multiset_payload(chunk):
            arr = decode_multiset(chunk)
        else:
            arr = decode(chunk).to_ids()
        pieces.append(arr)
        counts_list.append(len(arr))
    ids = np.concatenate(pieces) if pieces else np.empty(0, np.uint64)
    return ids, np.asarray(counts_list, dtype=np.int64)


def get_codec(name: str) -> IdListCodec:
    try:
        return CODECS[name]
    except KeyError:
        raise EncodingError(
            f"unknown ID-list codec {name!r}; choose from {sorted(CODECS)}"
        ) from None
