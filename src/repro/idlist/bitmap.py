"""Bitmap codecs for ID lists.

Section 6.4 of the paper: "The bitmap algorithms performed poorly, so we
omit them here for brevity."  We implement them anyway so the ablation
benchmark can reproduce that finding:

- :func:`plain_encode` -- one bit per ID over the span ``[first, last]``,
  packed to bytes.  Compact only when the span is dense.
- :func:`wah_encode` -- a word-aligned hybrid in the roaring/WAH spirit:
  63-bit literal words, with runs of identical all-zero/all-one words
  collapsed into fill words.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.idlist.idlist import IdList
from repro.idlist.varbyte import encode as vb_encode

_U64 = np.uint64


def _span_bits(ids: IdList) -> tuple[int, np.ndarray]:
    """Return (offset, dense boolean array over the ID span)."""
    first = int(ids.starts[0])
    last = int(ids.ends[-1])
    bits = np.zeros(last - first + 1, dtype=bool)
    for s, e in ids.runs():
        bits[s - first : e - first + 1] = True
    return first, bits


def plain_encode(ids: IdList) -> bytes:
    """Header ``varbyte(offset, nbits)`` + ``packbits`` payload."""
    if ids.is_empty():
        return vb_encode(np.array([0, 0], _U64)).ljust(2, b"\x00")
    offset, bits = _span_bits(ids)
    header = vb_encode(np.array([offset, bits.size], _U64))
    return header + np.packbits(bits).tobytes()


def plain_decode(data: bytes) -> IdList:
    values, consumed = _read_varints(data, 2)
    offset, nbits = int(values[0]), int(values[1])
    if nbits == 0:
        return IdList.empty()
    payload = np.frombuffer(data[consumed:], dtype=np.uint8)
    bits = np.unpackbits(payload)[:nbits].astype(bool)
    return IdList.from_mask(bits, offset=offset)


_LITERAL_BITS = 63
_FILL_FLAG = _U64(1) << _U64(63)
_ONES_FLAG = _U64(1) << _U64(62)


def wah_encode(ids: IdList) -> bytes:
    """Word-aligned hybrid: literal 63-bit words or run-length fill words.

    Fill word layout: bit63=1, bit62=fill bit value, low 62 bits=run length
    in words.  Literal word: bit63=0, low 63 bits of payload.
    """
    if ids.is_empty():
        return vb_encode(np.array([0, 0], _U64))
    offset, bits = _span_bits(ids)
    pad = (-bits.size) % _LITERAL_BITS
    padded = np.concatenate([bits, np.zeros(pad, dtype=bool)])
    groups = padded.reshape(-1, _LITERAL_BITS)
    weights = _U64(1) << np.arange(_LITERAL_BITS, dtype=_U64)
    words = (groups.astype(_U64) * weights).sum(axis=1, dtype=_U64)

    all_ones = _U64((1 << _LITERAL_BITS) - 1)
    out: list[int] = []
    i = 0
    n = words.size
    while i < n:
        w = words[i]
        if w == 0 or w == all_ones:
            j = i
            while j < n and words[j] == w:
                j += 1
            fill = int(_FILL_FLAG) | (int(_ONES_FLAG) if w == all_ones else 0) | (j - i)
            out.append(fill)
            i = j
        else:
            out.append(int(w))
            i += 1
    header = vb_encode(np.array([offset, bits.size], _U64))
    return header + np.asarray(out, dtype=_U64).tobytes()


def wah_decode(data: bytes) -> IdList:
    values, consumed = _read_varints(data, 2)
    offset, nbits = int(values[0]), int(values[1])
    if nbits == 0:
        return IdList.empty()
    words = np.frombuffer(data[consumed:], dtype=_U64)
    chunks: list[np.ndarray] = []
    all_ones = np.ones(_LITERAL_BITS, dtype=bool)
    all_zero = np.zeros(_LITERAL_BITS, dtype=bool)
    for w in words.tolist():
        if w & int(_FILL_FLAG):
            run = w & ((1 << 62) - 1)
            template = all_ones if w & int(_ONES_FLAG) else all_zero
            chunks.append(np.tile(template, run))
        else:
            chunks.append((w >> np.arange(_LITERAL_BITS, dtype=_U64)) & _U64(1) > 0)
    bits = np.concatenate(chunks)[:nbits]
    return IdList.from_mask(bits, offset=offset)


def _read_varints(data: bytes, count: int) -> tuple[list[int], int]:
    """Read ``count`` leading varints, returning values and bytes consumed."""
    values: list[int] = []
    acc = 0
    shift = 0
    consumed = 0
    for byte in data:
        consumed += 1
        acc |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(acc)
            acc, shift = 0, 0
            if len(values) == count:
                return values, consumed
    raise EncodingError("truncated bitmap header")
