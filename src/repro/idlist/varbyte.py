"""Vectorised variable-byte (VB / LEB128) integer coding.

Table 3 of the paper lists VB encoding as the final packing stage of the
ID-list pipeline: each integer is stored in the minimum number of 7-bit
groups, with the high bit of each byte flagging continuation.  The encoder
and decoder below are fully vectorised (a handful of numpy passes bounded
by the maximum byte length, i.e. at most 10 for 64-bit values); scalar
reference implementations are kept for property tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError

_U64 = np.uint64
_SEVEN = _U64(7)
_LOW7 = _U64(0x7F)


def encode(values: np.ndarray) -> bytes:
    """Encode a uint64 array into a variable-byte stream."""
    return encode_with_offsets(values)[0]


def encode_with_offsets(values: np.ndarray) -> tuple[bytes, np.ndarray]:
    """Encode and also return per-value byte offsets (length n+1).

    ``offsets[i]:offsets[i+1]`` is value ``i``'s byte span, so callers can
    slice one big encoded stream into many per-group payloads without
    re-encoding (the server's group-by fast path).
    """
    v = np.asarray(values, dtype=_U64)
    if v.size == 0:
        return b"", np.zeros(1, dtype=np.int64)
    nbytes = np.ones(v.size, dtype=np.int64)
    tmp = v >> _SEVEN
    while tmp.any():
        nbytes += (tmp != 0).astype(np.int64)
        tmp = tmp >> _SEVEN
    offsets = np.zeros(v.size + 1, dtype=np.int64)
    np.cumsum(nbytes, out=offsets[1:])
    starts = offsets[:-1]
    out = np.zeros(int(offsets[-1]), dtype=np.uint8)
    for j in range(int(nbytes.max())):
        sel = nbytes > j
        chunk = ((v[sel] >> _U64(7 * j)) & _LOW7).astype(np.uint8)
        continuation = (nbytes[sel] - 1 > j).astype(np.uint8) << 7
        out[starts[sel] + j] = chunk | continuation
    return out.tobytes(), offsets


def decode(data: bytes) -> np.ndarray:
    """Decode a variable-byte stream back into a uint64 array."""
    if not data:
        return np.empty(0, _U64)
    b = np.frombuffer(data, dtype=np.uint8)
    terminal = (b & 0x80) == 0
    if not terminal[-1]:
        raise EncodingError("truncated varbyte stream (dangling continuation)")
    ends = np.flatnonzero(terminal)
    group_starts = np.empty(ends.size, dtype=np.int64)
    group_starts[0] = 0
    group_starts[1:] = ends[:-1] + 1
    lengths = ends - group_starts + 1
    if np.any(lengths > 10):
        raise EncodingError("varbyte group longer than 10 bytes (not a uint64)")
    positions = np.arange(b.size, dtype=np.int64) - np.repeat(group_starts, lengths)
    contributions = (b & 0x7F).astype(_U64) << (positions.astype(_U64) * _SEVEN)
    return np.add.reduceat(contributions, group_starts)


def encode_scalar(values) -> bytes:
    """Reference scalar encoder (used by property tests)."""
    out = bytearray()
    for value in values:
        value = int(value)
        if value < 0:
            raise EncodingError("varbyte encodes unsigned integers only")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def decode_scalar(data: bytes) -> list[int]:
    """Reference scalar decoder (used by property tests)."""
    out: list[int] = []
    acc = 0
    shift = 0
    for byte in data:
        acc |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            if shift > 63:
                raise EncodingError("varbyte group longer than 10 bytes")
        else:
            out.append(acc)
            acc = 0
            shift = 0
    if shift or acc:
        raise EncodingError("truncated varbyte stream (dangling continuation)")
    return out
