"""ID-list management for ASHE aggregation results.

An ASHE ciphertext carries the multiset of row identifiers that were folded
into it (Section 3.1); Seabed keeps that multiset small with a stack of
integer-list encodings (Section 4.5, Table 3): range encoding, differential
encoding, variable-byte encoding, and Deflate compression, plus bitmap
baselines evaluated (and rejected) by the paper.

- :class:`repro.idlist.idlist.IdList` -- the canonical sorted-run
  representation with vectorised set algebra.
- :mod:`repro.idlist.varbyte` -- vectorised LEB128-style varints.
- :mod:`repro.idlist.encoding` -- range / diff transforms (Table 3).
- :mod:`repro.idlist.bitmap` -- plain and word-aligned bitmap codecs.
- :mod:`repro.idlist.codec` -- composable codec pipelines and the named
  combinations benchmarked in Figure 8.
"""

from repro.idlist.codec import CODECS, IdListCodec, get_codec
from repro.idlist.idlist import IdList

__all__ = ["CODECS", "IdList", "IdListCodec", "get_codec"]
