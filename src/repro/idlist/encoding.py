"""Range and differential transforms for ID lists (paper Table 3).

These transforms turn an :class:`~repro.idlist.idlist.IdList` into a flat
integer sequence that the variable-byte packer then serialises:

- **Range encoding** describes each run by its bounds:
  ``[2..14, 19..23] -> [2, 14, 19, 23]`` (rendered ``[2-14, 19-23]`` in the
  paper).  Great for contiguous IDs, wasteful for sparse ones (each isolated
  ID costs two numbers), which is why Seabed drops it on the group-by path.
- **Differential (Diff) encoding** replaces absolute numbers with deltas:
  ``[2, 3, 4, 9, 23] -> [2, 1, 1, 5, 14]``.
- **Combination** applies Diff to the range sequence, encoding each run as
  ``(gap from previous end, run length)``:
  ``[2..14, 19..23] -> [2-12, 5-4]``.

All functions are inverses in pairs and vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.idlist.idlist import IdList

_U64 = np.uint64
_ONE = _U64(1)


def ranges_flatten(ids: IdList) -> np.ndarray:
    """``[s0, e0, s1, e1, ...]`` from the run representation."""
    out = np.empty(2 * ids.num_runs, dtype=_U64)
    out[0::2] = ids.starts
    out[1::2] = ids.ends
    return out


def ranges_unflatten(flat: np.ndarray) -> IdList:
    flat = np.asarray(flat, dtype=_U64)
    if flat.size % 2:
        raise EncodingError("range sequence must have even length")
    return IdList(flat[0::2], flat[1::2])


def diff_encode(values: np.ndarray) -> np.ndarray:
    """First value verbatim, then deltas to the previous value."""
    v = np.asarray(values, dtype=_U64)
    if v.size == 0:
        return v
    out = np.empty_like(v)
    out[0] = v[0]
    out[1:] = v[1:] - v[:-1]
    return out


def diff_decode(deltas: np.ndarray) -> np.ndarray:
    d = np.asarray(deltas, dtype=_U64)
    if d.size == 0:
        return d
    return np.cumsum(d, dtype=_U64)


def combination_encode(ids: IdList) -> np.ndarray:
    """Paper's *Combination*: per-run ``(start delta, length delta)`` pairs.

    Run ``r`` becomes ``(starts[r] - ends[r-1], ends[r] - starts[r])`` with
    the first run anchored at its absolute start.  For ``[2..14, 19..23]``
    this yields ``[2, 12, 5, 4]``, the paper's ``[2-12, 5-4]``.
    """
    if ids.is_empty():
        return np.empty(0, _U64)
    out = np.empty(2 * ids.num_runs, dtype=_U64)
    out[0] = ids.starts[0]
    out[2::2] = ids.starts[1:] - ids.ends[:-1]
    out[1::2] = ids.ends - ids.starts
    return out


def combination_decode(flat: np.ndarray) -> IdList:
    flat = np.asarray(flat, dtype=_U64)
    if flat.size == 0:
        return IdList.empty()
    if flat.size % 2:
        raise EncodingError("combination sequence must have even length")
    gaps = flat[0::2]
    lengths = flat[1::2]
    # starts[r] = cumsum(gaps + lengths) shifted: start_r = start_{r-1} +
    # len_{r-1} + gap_r.  Work in uint64 with explicit prefix sums.
    increments = gaps.copy()
    increments[1:] += lengths[:-1]
    starts = np.cumsum(increments, dtype=_U64)
    ends = starts + lengths
    return IdList(starts, ends)
